// Locks down that the real thread pool (ClusterConfig::execute_parallel) is
// invisible to everything but wall-clock time: the full operator suite must
// produce identical results AND identical simulated metrics with the pool on
// and off, including under an active fault plan. The cost model is charged
// from the driver thread only, so nothing may depend on execution order.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "engine/bag.h"
#include "engine/extra_ops.h"
#include "engine/join.h"
#include "engine/ops.h"
#include "engine/parallel_shuffle.h"
#include "engine/shuffle.h"

namespace matryoshka::engine {
namespace {

constexpr uint64_t kSeed = 77;

ClusterConfig Config(bool parallel) {
  ClusterConfig cfg;
  cfg.num_machines = 4;
  cfg.cores_per_machine = 2;
  cfg.default_parallelism = 8;
  cfg.execute_parallel = parallel;
  // Pin the pool size so real multi-thread scatter/concat runs regardless of
  // how many hardware threads the host exposes (CI containers often pin 1).
  cfg.pool_threads = 4;
  return cfg;
}

struct SuiteOutcome {
  Metrics metrics;
  bool ok = false;
  // Sorted driver-side snapshots of every operator chain's output.
  std::vector<int64_t> ints;
  std::vector<std::pair<int64_t, int64_t>> pairs;
  std::vector<int64_t> extras;
  int64_t count = 0;
  int64_t reduced = 0;
};

/// Runs one fixed program through every operator family and snapshots both
/// the results and the complete metrics.
SuiteOutcome RunSuite(ClusterConfig cfg) {
  Cluster c(cfg);
  SuiteOutcome out;

  std::vector<std::pair<int64_t, int64_t>> kv;
  for (int64_t i = 0; i < 3000; ++i) kv.emplace_back(i % 64, i % 11);
  auto pairs = Parallelize(&c, kv, 8);

  // Narrow chain.
  auto mapped = Map(pairs, [](const std::pair<int64_t, int64_t>& p) {
    return std::pair<int64_t, int64_t>(p.first, p.second + 1);
  });
  auto filtered =
      Filter(mapped, [](const std::pair<int64_t, int64_t>& p) {
        return p.second % 3 != 0;
      });
  auto flat = FlatMapValues(filtered, [](int64_t v) {
    return std::vector<int64_t>{v, v * 2};
  });
  auto repartitioned = MapPartitions(
      flat, [](const std::vector<std::pair<int64_t, int64_t>>& part) {
        return part;
      });
  auto with_ids = ZipWithUniqueId(Values(repartitioned));
  auto sampled = Sample(Keys(pairs), 0.5, kSeed);

  // Wide operators.
  auto reduced_bag = ReduceByKey(
      repartitioned, [](int64_t a, int64_t b) { return a + b; }, 8);
  auto grouped = GroupByKey(filtered, 8);
  auto grouped_sizes = MapValues(grouped, [](const std::vector<int64_t>& g) {
    return static_cast<int64_t>(g.size());
  });
  auto distinct = Distinct(Keys(filtered), 8);
  auto aggregated = AggregateByKey(
      filtered, int64_t{0}, [](int64_t a, int64_t v) { return a + v; },
      [](int64_t a, int64_t b) { return a + b; }, 8);

  // Joins.
  auto joined = RepartitionJoin(reduced_bag, aggregated, 8);
  auto joined_flat = MapValues(
      joined, [](const std::pair<int64_t, int64_t>& vw) {
        return vw.first + vw.second;
      });
  std::vector<std::pair<int64_t, int64_t>> small_kv;
  for (int64_t i = 0; i < 16; ++i) small_kv.emplace_back(i, i * 10);
  auto small = Parallelize(&c, small_kv, 2, /*scale=*/1.0);
  auto bjoined = BroadcastJoin(reduced_bag, small);
  auto louter = LeftOuterJoin(small, reduced_bag, 8);
  auto cogrouped = CoGroup(reduced_bag, aggregated, 8);
  auto cg_sizes = MapValues(
      cogrouped,
      [](const std::pair<std::vector<int64_t>, std::vector<int64_t>>& g) {
        return static_cast<int64_t>(g.first.size() + 100 * g.second.size());
      });
  auto cart = Cartesian(distinct, Keys(small));
  auto cart_sums = Map(cart, [](const std::pair<int64_t, int64_t>& p) {
    return p.first * 1000 + p.second;
  });

  // Set ops.
  auto sub = Subtract(Keys(filtered), distinct, 8);  // empty by construction
  auto inter = Intersection(Keys(filtered), sampled, 8);
  auto unioned = Union(distinct, inter);

  // Actions.
  out.count = Count(unioned);
  out.reduced =
      Reduce(Values(aggregated), [](int64_t a, int64_t b) { return a + b; })
          .value_or(0);
  auto top = TopK(Keys(pairs), 5, std::less<int64_t>());

  auto snap_pairs = [](std::vector<std::pair<int64_t, int64_t>> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  auto snap_ints = [](std::vector<int64_t> v) {
    std::sort(v.begin(), v.end());
    return v;
  };

  out.pairs = snap_pairs(Collect(joined_flat));
  auto more_pairs = snap_pairs(Collect(grouped_sizes));
  out.pairs.insert(out.pairs.end(), more_pairs.begin(), more_pairs.end());
  auto bj = snap_pairs(Collect(MapValues(
      bjoined, [](const std::pair<int64_t, int64_t>& vw) {
        return vw.first - vw.second;
      })));
  out.pairs.insert(out.pairs.end(), bj.begin(), bj.end());
  auto cg = snap_pairs(Collect(cg_sizes));
  out.pairs.insert(out.pairs.end(), cg.begin(), cg.end());

  out.ints = snap_ints(Collect(cart_sums));
  auto extra1 = snap_ints(Collect(sub));
  auto extra2 = snap_ints(Collect(unioned));
  auto extra3 = snap_ints(Collect(Map(with_ids, [](const std::pair<uint64_t, int64_t>& p) {
    return static_cast<int64_t>(p.first);
  })));
  out.extras = extra1;
  out.extras.insert(out.extras.end(), extra2.begin(), extra2.end());
  out.extras.insert(out.extras.end(), extra3.begin(), extra3.end());
  out.extras.insert(out.extras.end(), top.begin(), top.end());
  (void)NotEmpty(louter);

  out.ok = c.ok();
  out.metrics = c.metrics();
  return out;
}

// The simulated cost model must be bit-identical: the pool may only change
// wall-clock time, never a single charged metric.
void ExpectSameMetrics(const Metrics& a, const Metrics& b) {
  EXPECT_EQ(a.simulated_time_s, b.simulated_time_s);
  EXPECT_EQ(a.jobs, b.jobs);
  EXPECT_EQ(a.stages, b.stages);
  EXPECT_EQ(a.tasks, b.tasks);
  EXPECT_EQ(a.elements_processed, b.elements_processed);
  EXPECT_EQ(a.shuffle_bytes, b.shuffle_bytes);
  EXPECT_EQ(a.broadcast_bytes, b.broadcast_bytes);
  EXPECT_EQ(a.spilled_bytes, b.spilled_bytes);
  EXPECT_EQ(a.spill_events, b.spill_events);
  EXPECT_EQ(a.peak_task_bytes, b.peak_task_bytes);
  EXPECT_EQ(a.peak_machine_bytes, b.peak_machine_bytes);
  EXPECT_EQ(a.failed_tasks, b.failed_tasks);
  EXPECT_EQ(a.task_retries, b.task_retries);
  EXPECT_EQ(a.speculative_launches, b.speculative_launches);
  EXPECT_EQ(a.machines_lost, b.machines_lost);
  EXPECT_EQ(a.recovery_time_s, b.recovery_time_s);
  EXPECT_EQ(a.checkpoints_written, b.checkpoints_written);
  EXPECT_EQ(a.checkpoint_bytes, b.checkpoint_bytes);
  EXPECT_EQ(a.driver_retries, b.driver_retries);
  EXPECT_EQ(a.plan_fallbacks, b.plan_fallbacks);
}

void ExpectSameOutcome(const SuiteOutcome& a, const SuiteOutcome& b) {
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.ints, b.ints);
  EXPECT_EQ(a.pairs, b.pairs);
  EXPECT_EQ(a.extras, b.extras);
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.reduced, b.reduced);
  ExpectSameMetrics(a.metrics, b.metrics);
}

// --- Per-operator bit-identity -------------------------------------------
//
// The suite tests above compare sorted snapshots; the checks below are
// stricter: for each wide operator the pool-off and pool-on (4 threads)
// outputs must match partition by partition, element by element, IN ORDER —
// the exact guarantee of the ParallelScatter kernel — along with the
// key_partitions metadata and the full simulated metrics.

template <typename T>
void ExpectBitIdenticalBags(const Bag<T>& a, const Bag<T>& b) {
  ASSERT_EQ(a.num_partitions(), b.num_partitions());
  EXPECT_EQ(a.key_partitions(), b.key_partitions());
  for (int64_t i = 0; i < a.num_partitions(); ++i) {
    EXPECT_EQ(a.partitions()[static_cast<std::size_t>(i)],
              b.partitions()[static_cast<std::size_t>(i)])
        << "partition " << i << " differs between pool-off and pool-on";
  }
}

ClusterConfig WithFaults(ClusterConfig cfg) {
  cfg.faults.seed = 5;
  cfg.faults.task_failure_prob = 0.05;
  cfg.faults.straggler_fraction = 0.1;
  cfg.faults.straggler_slowdown = 4.0;
  cfg.faults.speculative_execution = true;
  return cfg;
}

Bag<std::pair<int64_t, int64_t>> MakePairs(Cluster* c) {
  std::vector<std::pair<int64_t, int64_t>> kv;
  for (int64_t i = 0; i < 5000; ++i) kv.emplace_back((i * 37) % 128, i % 17);
  return Parallelize(c, kv, 8);
}

Bag<std::pair<int64_t, int64_t>> MakeSmallPairs(Cluster* c) {
  std::vector<std::pair<int64_t, int64_t>> kv;
  for (int64_t i = 0; i < 32; ++i) kv.emplace_back(i * 4, i * 10);
  return Parallelize(c, kv, 2, /*scale=*/1.0);
}

/// Runs `make_op` (Cluster* -> Bag) once with the pool off and once with a
/// 4-thread pool — clean and again under an active FaultPlan — and requires
/// bit-identical bags and metrics each time.
template <typename MakeOp>
void ExpectOpBitIdentical(const MakeOp& make_op) {
  for (bool faulty : {false, true}) {
    ClusterConfig off_cfg = Config(false);
    ClusterConfig on_cfg = Config(true);
    if (faulty) {
      off_cfg = WithFaults(off_cfg);
      on_cfg = WithFaults(on_cfg);
    }
    Cluster off(off_cfg);
    Cluster on(on_cfg);
    auto a = make_op(&off);
    auto b = make_op(&on);
    ASSERT_TRUE(off.ok());
    ASSERT_TRUE(on.ok());
    ExpectBitIdenticalBags(a, b);
    ExpectSameMetrics(off.metrics(), on.metrics());
  }
}

TEST(ParallelDeterminismTest, ScatterKernelMatchesReferenceLoop) {
  // The kernel's ground truth: the sequential producer-order scatter loop.
  // Skewed, empty, and ragged producers; pool sizes 1..4 plus no pool.
  std::vector<std::vector<int64_t>> inputs(7);
  for (std::size_t p = 0; p < inputs.size(); ++p) {
    if (p == 3) continue;  // leave one producer empty
    for (std::size_t j = 0; j < 100 * p * p + 5; ++j) {
      inputs[p].push_back(static_cast<int64_t>(p * 131071 + j * 2654435761u));
    }
  }
  const std::size_t kParts = 9;
  auto part_of = [&](int64_t x) {
    return static_cast<std::size_t>(static_cast<uint64_t>(x) % kParts);
  };
  std::vector<std::vector<int64_t>> expected(kParts);
  for (const auto& in : inputs) {
    for (int64_t x : in) expected[part_of(x)].push_back(x);
  }
  EXPECT_EQ(internal::ParallelScatter<int64_t>(nullptr, inputs, kParts,
                                               part_of),
            expected);
  for (std::size_t threads = 1; threads <= 4; ++threads) {
    ThreadPool pool(threads);
    EXPECT_EQ(internal::ParallelScatter<int64_t>(&pool, inputs, kParts,
                                                 part_of),
              expected)
        << "with a " << threads << "-thread pool";
  }
}

TEST(ParallelDeterminismTest, RepartitionBitIdentical) {
  ExpectOpBitIdentical(
      [](Cluster* c) { return Repartition(MakePairs(c), 5); });
}

TEST(ParallelDeterminismTest, PartitionByKeyBitIdentical) {
  ExpectOpBitIdentical(
      [](Cluster* c) { return PartitionByKey(MakePairs(c), 8); });
}

TEST(ParallelDeterminismTest, ReduceByKeyBitIdentical) {
  ExpectOpBitIdentical([](Cluster* c) {
    return ReduceByKey(
        MakePairs(c), [](int64_t a, int64_t b) { return a + b; }, 8);
  });
}

TEST(ParallelDeterminismTest, GroupByKeyBitIdentical) {
  ExpectOpBitIdentical(
      [](Cluster* c) { return GroupByKey(MakePairs(c), 8); });
}

TEST(ParallelDeterminismTest, AggregateByKeyBitIdentical) {
  ExpectOpBitIdentical([](Cluster* c) {
    return AggregateByKey(
        MakePairs(c), int64_t{0},
        [](int64_t a, int64_t v) { return a + v; },
        [](int64_t a, int64_t b) { return a + b; }, 8);
  });
}

TEST(ParallelDeterminismTest, DistinctBitIdentical) {
  ExpectOpBitIdentical(
      [](Cluster* c) { return Distinct(Keys(MakePairs(c)), 8); });
}

TEST(ParallelDeterminismTest, SubtractBitIdentical) {
  ExpectOpBitIdentical([](Cluster* c) {
    return Subtract(Keys(MakePairs(c)), Keys(MakeSmallPairs(c)), 8);
  });
}

TEST(ParallelDeterminismTest, IntersectionBitIdentical) {
  ExpectOpBitIdentical([](Cluster* c) {
    return Intersection(Keys(MakePairs(c)), Keys(MakeSmallPairs(c)), 8);
  });
}

TEST(ParallelDeterminismTest, RepartitionJoinBitIdentical) {
  ExpectOpBitIdentical([](Cluster* c) {
    auto pairs = MakePairs(c);
    auto reduced = ReduceByKey(
        pairs, [](int64_t a, int64_t b) { return a + b; }, 8);
    return RepartitionJoin(pairs, reduced, 8);
  });
}

TEST(ParallelDeterminismTest, BroadcastJoinBitIdentical) {
  ExpectOpBitIdentical([](Cluster* c) {
    return BroadcastJoin(MakePairs(c), MakeSmallPairs(c));
  });
}

TEST(ParallelDeterminismTest, LeftOuterJoinBitIdentical) {
  ExpectOpBitIdentical([](Cluster* c) {
    return LeftOuterJoin(MakePairs(c), MakeSmallPairs(c), 8);
  });
}

TEST(ParallelDeterminismTest, CoGroupBitIdentical) {
  ExpectOpBitIdentical([](Cluster* c) {
    return CoGroup(MakePairs(c), MakeSmallPairs(c), 8);
  });
}

TEST(ParallelDeterminismTest, PoolDoesNotPerturbResultsOrCostModel) {
  SuiteOutcome serial = RunSuite(Config(false));
  SuiteOutcome parallel = RunSuite(Config(true));
  ASSERT_TRUE(serial.ok);
  EXPECT_GT(serial.count, 0);
  ExpectSameOutcome(serial, parallel);
}

TEST(ParallelDeterminismTest, PoolIsRepeatableAcrossRuns) {
  SuiteOutcome first = RunSuite(Config(true));
  SuiteOutcome second = RunSuite(Config(true));
  ExpectSameOutcome(first, second);
}

TEST(ParallelDeterminismTest, PoolDoesNotPerturbFaultInjection) {
  // Fault draws are keyed on (seed, stage, task), not on execution order, so
  // an active plan must stay bit-identical under the pool too.
  ClusterConfig serial_cfg = Config(false);
  ClusterConfig parallel_cfg = Config(true);
  for (ClusterConfig* cfg : {&serial_cfg, &parallel_cfg}) {
    cfg->faults.seed = 5;
    cfg->faults.task_failure_prob = 0.05;
    cfg->faults.straggler_fraction = 0.1;
    cfg->faults.straggler_slowdown = 4.0;
    cfg->faults.speculative_execution = true;
  }
  SuiteOutcome serial = RunSuite(serial_cfg);
  SuiteOutcome parallel = RunSuite(parallel_cfg);
  ASSERT_TRUE(serial.ok);
  EXPECT_GT(serial.metrics.failed_tasks, 0);
  ExpectSameOutcome(serial, parallel);
}

TEST(ParallelDeterminismTest, PoolDoesNotPerturbRecoveryFeatures) {
  // Auto-checkpointing, degraded re-planning, and machine loss are all
  // charged from the driver thread; the pool must not perturb a single new
  // counter either.
  ClusterConfig serial_cfg = Config(false);
  ClusterConfig parallel_cfg = Config(true);
  for (ClusterConfig* cfg : {&serial_cfg, &parallel_cfg}) {
    cfg->faults.seed = 5;
    cfg->faults.task_failure_prob = 0.05;
    cfg->faults.max_task_retries = 8;
    cfg->faults.machine_loss_times_s = {0.01};
    cfg->recovery.auto_checkpoint = true;
    cfg->recovery.min_checkpoint_lineage = 2;
    cfg->recovery.checkpoint_bytes_per_s = 1e12;  // checkpoints almost free
    cfg->recovery.degraded_replanning = true;
  }
  SuiteOutcome serial = RunSuite(serial_cfg);
  SuiteOutcome parallel = RunSuite(parallel_cfg);
  ASSERT_TRUE(serial.ok);
  EXPECT_EQ(serial.metrics.machines_lost, 1);
  EXPECT_GT(serial.metrics.checkpoints_written, 0);
  ExpectSameOutcome(serial, parallel);
}

}  // namespace
}  // namespace matryoshka::engine
