#ifndef MATRYOSHKA_WORKLOADS_WORKLOAD_H_
#define MATRYOSHKA_WORKLOADS_WORKLOAD_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "engine/cluster.h"

namespace matryoshka::workloads {

/// Outcome of running one workload variant on a (freshly Reset) cluster:
/// the sticky status, the cost-model metrics (simulated time, jobs, ...),
/// and a small per-group result summary for cross-variant validation.
template <typename K, typename R>
struct WorkloadResult {
  Status status;
  engine::Metrics metrics;
  /// (group key, result) pairs, or empty if the run failed.
  std::vector<std::pair<K, R>> per_group;

  bool ok() const { return status.ok(); }
  double time_s() const { return metrics.simulated_time_s; }
};

/// Snapshot helper: captures status + metrics from the cluster after a run.
template <typename K, typename R>
WorkloadResult<K, R> FinishRun(engine::Cluster* cluster,
                               std::vector<std::pair<K, R>> per_group) {
  WorkloadResult<K, R> result;
  result.status = cluster->status();
  result.metrics = cluster->metrics();
  if (result.status.ok()) result.per_group = std::move(per_group);
  return result;
}

/// Which implementation strategy to run a workload with.
enum class Variant {
  kMatryoshka,
  kOuterParallel,
  kInnerParallel,
  kDiqlLike,
};

inline const char* VariantName(Variant v) {
  switch (v) {
    case Variant::kMatryoshka:
      return "matryoshka";
    case Variant::kOuterParallel:
      return "outer-parallel";
    case Variant::kInnerParallel:
      return "inner-parallel";
    case Variant::kDiqlLike:
      return "diql-like";
  }
  return "?";
}

}  // namespace matryoshka::workloads

#endif  // MATRYOSHKA_WORKLOADS_WORKLOAD_H_
