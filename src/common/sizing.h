#ifndef MATRYOSHKA_COMMON_SIZING_H_
#define MATRYOSHKA_COMMON_SIZING_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

namespace matryoshka {

/// Estimated in-memory footprint of a value, in bytes. This is the
/// repository's stand-in for Spark's SizeEstimator (the paper uses it in
/// Sec. 8.3 to pick the broadcast side of a half-lifted cross product): it is
/// a recursive structural estimate, not an exact allocator measurement.
///
/// Extend by overloading EstimateSize for user element types; the generic
/// overload covers trivially copyable types, std::string, std::pair,
/// std::tuple, and std::vector.
template <typename T>
std::size_t EstimateSize(const T& v);

namespace sizing_internal {

template <typename T, typename = void>
struct Sizer {
  static_assert(std::is_trivially_copyable_v<T>,
                "EstimateSize: add an overload/specialization for this type");
  static std::size_t Of(const T&) { return sizeof(T); }
};

template <>
struct Sizer<std::string> {
  static std::size_t Of(const std::string& s) {
    return sizeof(std::string) + s.capacity();
  }
};

template <typename A, typename B>
struct Sizer<std::pair<A, B>> {
  static std::size_t Of(const std::pair<A, B>& p) {
    return EstimateSize(p.first) + EstimateSize(p.second);
  }
};

template <typename... Ts>
struct Sizer<std::tuple<Ts...>> {
  static std::size_t Of(const std::tuple<Ts...>& t) {
    std::size_t total = 0;
    std::apply([&](const Ts&... xs) { ((total += EstimateSize(xs)), ...); },
               t);
    return total;
  }
};

template <typename T>
struct Sizer<std::vector<T>> {
  static std::size_t Of(const std::vector<T>& v) {
    std::size_t total = sizeof(std::vector<T>);
    if constexpr (std::is_trivially_copyable_v<T>) {
      total += v.capacity() * sizeof(T);
    } else {
      for (const auto& x : v) total += EstimateSize(x);
      total += (v.capacity() - v.size()) * sizeof(T);
    }
    return total;
  }
};

}  // namespace sizing_internal

template <typename T>
std::size_t EstimateSize(const T& v) {
  return sizing_internal::Sizer<T>::Of(v);
}

}  // namespace matryoshka

#endif  // MATRYOSHKA_COMMON_SIZING_H_
