// Unit coverage for lang/row_kernels.h: shape recognition of the compiled
// Row kernels, kernel-vs-interpreter value agreement, and the nullopt
// fallbacks that keep unrecognized lambdas on the tree-walking interpreter.
// End-to-end equivalence of lowered DiQL programs (which now route pure
// predicate / projection / combiner lambdas through these kernels) is locked
// by lang_test.cc; this file pins the compiler's contract directly.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "lang/expr.h"
#include "lang/row_kernels.h"
#include "lang/value.h"

namespace matryoshka::lang {
namespace {

using rowkernel::CaptureMap;
using rowkernel::CompileCombiner;
using rowkernel::CompileFlatProjection;
using rowkernel::CompileOperand;
using rowkernel::CompilePredicate;
using rowkernel::CompileProjection;

Value Pair(int64_t a, int64_t b) {
  return Value(Value::Tuple{Value(a), Value(b)});
}

// --- EvalRowBinOp: the single-sourced scalar semantics ---------------------

TEST(EvalRowBinOpTest, IntPreservingArithmetic) {
  EXPECT_EQ(EvalRowBinOp(BinOpKind::kAdd, Value(int64_t{2}), Value(int64_t{3})),
            Value(int64_t{5}));
  EXPECT_EQ(EvalRowBinOp(BinOpKind::kMul, Value(int64_t{4}), Value(int64_t{6})),
            Value(int64_t{24}));
  // Mixed operands promote to double.
  EXPECT_EQ(EvalRowBinOp(BinOpKind::kAdd, Value(int64_t{2}), Value(0.5)),
            Value(2.5));
}

TEST(EvalRowBinOpTest, DivisionByZeroYieldsZero) {
  EXPECT_EQ(EvalRowBinOp(BinOpKind::kDiv, Value(int64_t{7}), Value(int64_t{0})),
            Value(0.0));
  EXPECT_EQ(EvalRowBinOp(BinOpKind::kDiv, Value(int64_t{7}), Value(int64_t{2})),
            Value(3.5));
}

TEST(EvalRowBinOpTest, Comparisons) {
  EXPECT_EQ(EvalRowBinOp(BinOpKind::kLe, Value(int64_t{3}), Value(int64_t{3})),
            Value(true));
  EXPECT_EQ(EvalRowBinOp(BinOpKind::kLt, Value(int64_t{3}), Value(int64_t{3})),
            Value(false));
  EXPECT_EQ(EvalRowBinOp(BinOpKind::kNe, Value(std::string("a")),
                         Value(std::string("b"))),
            Value(true));
}

// --- Operand compilation ---------------------------------------------------

TEST(RowKernelTest, CompilesParamFieldAndFoldedCaptures) {
  CaptureMap cap;
  cap.emplace("limit", Value(int64_t{10}));

  auto param = CompileOperand(*Var("x"), "x", cap);
  ASSERT_TRUE(param.has_value());
  EXPECT_EQ(param->Get(Value(int64_t{42})), Value(int64_t{42}));

  auto field = CompileOperand(*Field(Var("x"), 1), "x", cap);
  ASSERT_TRUE(field.has_value());
  EXPECT_EQ(field->Get(Pair(3, 9)), Value(int64_t{9}));

  // A captured name folds to its driver-scalar value at compile time.
  auto folded = CompileOperand(*Var("limit"), "x", cap);
  ASSERT_TRUE(folded.has_value());
  EXPECT_EQ(folded->Get(Value(int64_t{0})), Value(int64_t{10}));

  // An unbound name is not compilable.
  EXPECT_FALSE(CompileOperand(*Var("mystery"), "x", cap).has_value());
  // A field of anything but the parameter itself is not compilable.
  EXPECT_FALSE(
      CompileOperand(*Field(Field(Var("x"), 0), 1), "x", cap).has_value());
}

// --- Predicate -------------------------------------------------------------

TEST(RowKernelTest, PredicateMatchesInterpreterSemantics) {
  CaptureMap cap;
  cap.emplace("cut", Value(int64_t{5}));
  // x => x._0 < cut
  auto pred = CompilePredicate(
      *Lam("x", BinOp(BinOpKind::kLt, Field(Var("x"), 0), Var("cut"))), cap);
  ASSERT_TRUE(pred.has_value());
  EXPECT_TRUE((*pred)(Pair(4, 0)));
  EXPECT_FALSE((*pred)(Pair(5, 0)));
}

TEST(RowKernelTest, PredicateFallbacks) {
  CaptureMap cap;
  // Multi-statement body: interpreter only.
  auto with_body = LamProgram(
      {"x"}, {Stmt{"t", Lit(Value(int64_t{1}))}},
      BinOp(BinOpKind::kLt, Var("x"), Var("t")));
  EXPECT_FALSE(CompilePredicate(*with_body, cap).has_value());
  // Nested binop (deeper than one atom): interpreter only.
  auto nested = Lam(
      "x", BinOp(BinOpKind::kAnd,
                 BinOp(BinOpKind::kLt, Var("x"), Lit(Value(int64_t{9}))),
                 BinOp(BinOpKind::kLt, Lit(Value(int64_t{0})), Var("x"))));
  EXPECT_FALSE(CompilePredicate(*nested, cap).has_value());
}

// --- Projection ------------------------------------------------------------

TEST(RowKernelTest, TupleProjectionMatchesInterpreterSemantics) {
  CaptureMap cap;
  cap.emplace("k", Value(int64_t{100}));
  // x => (x._1, x._0 + k)
  auto proj = CompileProjection(
      *Lam("x", MakeTuple({Field(Var("x"), 1),
                           BinOp(BinOpKind::kAdd, Field(Var("x"), 0),
                                 Var("k"))})),
      cap);
  ASSERT_TRUE(proj.has_value());
  EXPECT_EQ((*proj)(Pair(3, 9)), Pair(9, 103));
}

TEST(RowKernelTest, ScalarProjectionAndFallback) {
  CaptureMap cap;
  // x => x._0 * x._0 compiles (one binop over two operands).
  auto sq = CompileProjection(
      *Lam("x", BinOp(BinOpKind::kMul, Field(Var("x"), 0), Field(Var("x"), 0))),
      cap);
  ASSERT_TRUE(sq.has_value());
  EXPECT_EQ((*sq)(Pair(7, 0)), Value(int64_t{49}));
  // A tuple slot that itself nests a tuple stays on the interpreter.
  auto nested = CompileProjection(
      *Lam("x", MakeTuple({MakeTuple({Var("x")}), Var("x")})), cap);
  EXPECT_FALSE(nested.has_value());
}

// --- Flat projection -------------------------------------------------------

TEST(RowKernelTest, FlatProjectionEmitsOneValuePerSlot) {
  CaptureMap cap;
  // x => (x, x + 1): two output elements per input.
  auto flat = CompileFlatProjection(
      *Lam("x", MakeTuple({Var("x"), BinOp(BinOpKind::kAdd, Var("x"),
                                           Lit(Value(int64_t{1})))})),
      cap);
  ASSERT_TRUE(flat.has_value());
  Value::Tuple out = (*flat)(Value(int64_t{5}));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], Value(int64_t{5}));
  EXPECT_EQ(out[1], Value(int64_t{6}));
  // A non-tuple result is not a flat projection.
  EXPECT_FALSE(CompileFlatProjection(*Lam("x", Var("x")), cap).has_value());
}

// --- Combiner --------------------------------------------------------------

TEST(RowKernelTest, CombinerCompilesExactBinOpShapeOnly) {
  // (a, b) => a + b
  auto add = CompileCombiner(*Lam2("a", "b", BinOp(BinOpKind::kAdd, Var("a"),
                                                   Var("b"))));
  ASSERT_TRUE(add.has_value());
  EXPECT_EQ((*add)(Value(int64_t{2}), Value(int64_t{3})), Value(int64_t{5}));
  // Swapped parameter order is a different function — not this shape.
  EXPECT_FALSE(CompileCombiner(*Lam2("a", "b", BinOp(BinOpKind::kSub, Var("b"),
                                                     Var("a"))))
                   .has_value());
  // Unary lambda is not a combiner.
  EXPECT_FALSE(CompileCombiner(*Lam("a", Var("a"))).has_value());
}

}  // namespace
}  // namespace matryoshka::lang
