#ifndef MATRYOSHKA_ENGINE_EXTERNAL_SPILL_FILE_H_
#define MATRYOSHKA_ENGINE_EXTERNAL_SPILL_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/failpoints.h"
#include "common/status.h"
#include "engine/external/memory_budget.h"

namespace matryoshka::engine::external {

/// One anonymous temp file holding the spilled runs of one worker (one
/// scatter producer or one aggregation partition).
///
/// Lifecycle / cleanup contract: the file is created with mkstemp under
/// $TMPDIR (default /tmp) and unlinked IMMEDIATELY, before any data is
/// written — the kernel reclaims the blocks when the last descriptor
/// closes. Cleanup is therefore structural, not a code path: a sticky
/// cost-model failure, a driver retry, an exception, even a crashed process
/// leaves nothing behind in the filesystem. Tests verify this two ways:
/// LiveCount() must return to zero after every op (RAII), and no
/// "matryoshka-spill-*" entries may remain in the temp dir even mid-run
/// (unlink-before-write).
///
/// Hardened IO (the real-fault contract, DESIGN.md): Write/Read loop over
/// partial pwrite/pread transfers, swallow EINTR, retry transient syscall
/// errors up to RealIoPolicy::max_io_retries with exponential backoff, and
/// surface everything else as a typed Status (kResourceExhausted for
/// ENOSPC, kIOError otherwise) — never an abort, never silent truncation.
/// WriteRun/ReadRun additionally carry a checksum over the run's bytes so a
/// flipped bit on disk is detected on merge-on-read (kDataCorruption).
///
/// Fault injection: Arm() attaches a FailpointRegistry and this file's
/// deterministic stream id; every syscall boundary then consults the
/// registry, keyed on (stream, site salt, byte offset, epoch) — a pure
/// function of the worker's own stream, so injected faults and the
/// counters they feed are identical across pool sizes. Unarmed files take
/// a single-branch fast path.
///
/// Thread safety: one worker appends to its own SpillFile (no sharing
/// during the write phase); the read phase uses positional pread on the
/// shared descriptor, which is safe from any number of concurrent readers
/// (read draws are pure functions of the read arguments, so concurrent
/// readers never race a counter).
class SpillFile {
 public:
  /// Opens (and immediately unlinks) a fresh temp file. Aborts if the temp
  /// dir is not writable — an environment error, not a data error.
  SpillFile();
  ~SpillFile();

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;
  SpillFile(SpillFile&& other) noexcept;
  SpillFile& operator=(SpillFile&&) = delete;

  /// Attaches the failpoint registry and this file's stream id (e.g. the
  /// scatter producer index). Null registry (or a disarmed one) keeps the
  /// fault-free fast path.
  void Arm(const FailpointRegistry* fp, uint64_t stream_id) {
    fp_ = fp;
    stream_ = stream_id;
  }

  /// Appends `data` at the end of the file, storing the start offset in
  /// `*offset`. Caller-serialized (one writer per file by design). `stats`
  /// (may be null) receives injected-fault and retry counts.
  Status Write(const std::string& data, uint64_t* offset, SpillStats* stats);

  /// Reads exactly `size` bytes starting at `offset` into `*out` (resized).
  /// Safe to call concurrently from any thread (positional pread).
  Status Read(uint64_t offset, std::size_t size, std::string* out,
              SpillStats* stats) const;

  /// Read + checksum verify: fails with kDataCorruption (and counts
  /// stats->checksum_failures) when the bytes on disk do not hash to
  /// `expected_checksum` (HashBytes over the run, computed by the writer
  /// BEFORE the data left memory).
  Status ReadRun(uint64_t offset, std::size_t size, uint64_t expected_checksum,
                 std::string* out, SpillStats* stats) const;

  /// Legacy convenience used by tests and fault-free paths: aborts on IO
  /// failure instead of returning it. Appends `data`, returns its offset.
  uint64_t Append(const std::string& data);
  /// Legacy convenience: exact read that aborts on failure.
  void ReadAt(uint64_t offset, std::size_t size, std::string* out) const;

  /// Bytes written so far.
  uint64_t size() const { return write_offset_; }

  /// Number of SpillFile objects currently alive in the process, for the
  /// temp-file cleanup tests.
  static int64_t LiveCount();

 private:
  int fd_ = -1;
  uint64_t write_offset_ = 0;
  const FailpointRegistry* fp_ = nullptr;
  uint64_t stream_ = 0;
};

}  // namespace matryoshka::engine::external

#endif  // MATRYOSHKA_ENGINE_EXTERNAL_SPILL_FILE_H_
