#include "serve/serving_driver.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "common/logging.h"
#include "engine/recovery.h"
#include "obs/chrome_trace.h"

namespace matryoshka::serve {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Field-wise sum of per-request metrics into the driver aggregate.
/// Counters add; peak footprints max (they describe different simulated
/// clusters, summing them would be meaningless).
void Accumulate(engine::Metrics* into, const engine::Metrics& m) {
  into->simulated_time_s += m.simulated_time_s;
  into->jobs += m.jobs;
  into->stages += m.stages;
  into->tasks += m.tasks;
  into->elements_processed += m.elements_processed;
  into->shuffle_bytes += m.shuffle_bytes;
  into->broadcast_bytes += m.broadcast_bytes;
  into->spilled_bytes += m.spilled_bytes;
  into->spill_events += m.spill_events;
  into->peak_task_bytes = std::max(into->peak_task_bytes, m.peak_task_bytes);
  into->peak_machine_bytes =
      std::max(into->peak_machine_bytes, m.peak_machine_bytes);
  into->failed_tasks += m.failed_tasks;
  into->task_retries += m.task_retries;
  into->speculative_launches += m.speculative_launches;
  into->machines_lost += m.machines_lost;
  into->recovery_time_s += m.recovery_time_s;
  into->checkpoints_written += m.checkpoints_written;
  into->checkpoint_bytes += m.checkpoint_bytes;
  into->driver_retries += m.driver_retries;
  into->plan_fallbacks += m.plan_fallbacks;
  into->real_spilled_bytes += m.real_spilled_bytes;
  into->real_spill_events += m.real_spill_events;
  into->real_spill_runs += m.real_spill_runs;
  into->real_io_faults_injected += m.real_io_faults_injected;
  into->real_io_retries += m.real_io_retries;
  into->checksum_failures += m.checksum_failures;
  into->inmemory_fallbacks += m.inmemory_fallbacks;
}

std::string RunName(const PlanSpec& spec, const PlanParams& params) {
  char fp[32];
  std::snprintf(fp, sizeof(fp), "%016llx",
                static_cast<unsigned long long>(params.Fingerprint()));
  return "serve/" + spec.name + "#" + fp;
}

}  // namespace

// --- ServeTicket ---

const ServeResponse& ServeTicket::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return ready_; });
  return response_;
}

bool ServeTicket::Ready() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ready_;
}

void ServeTicket::Complete(ServeResponse response) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    MATRYOSHKA_CHECK(!ready_) << "ServeTicket completed twice";
    response_ = std::move(response);
    ready_ = true;
  }
  cv_.notify_all();
}

// --- ServingDriver ---

ServingDriver::ServingDriver(const PlanRegistry* registry,
                             ServingConfig config)
    : registry_(registry),
      config_(std::move(config)),
      cache_(config_.cache_entries) {
  MATRYOSHKA_CHECK(registry_ != nullptr);
  MATRYOSHKA_CHECK(config_.max_in_flight > 0)
      << "ServingConfig.max_in_flight must be positive";
  if (config_.cluster.execute_parallel) {
    const std::size_t threads =
        config_.pool_threads > 0
            ? static_cast<std::size_t>(config_.pool_threads)
            : ThreadPool::DefaultThreads();
    pool_ = std::make_unique<ThreadPool>(threads);
  }
  workers_.reserve(static_cast<std::size_t>(config_.max_in_flight));
  for (int i = 0; i < config_.max_in_flight; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ServingDriver::~ServingDriver() {
  Drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::shared_ptr<ServeTicket> ServingDriver::Submit(ServeRequest request) {
  auto ticket = std::make_shared<ServeTicket>();
  const auto submit_time = std::chrono::steady_clock::now();

  Result<const PlanSpec*> spec = registry_->Lookup(request.plan);
  if (!spec.ok()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.submitted;
      ++stats_.rejected;
    }
    ServeResponse resp;
    resp.status = spec.status();
    resp.rejected = true;
    resp.wall_s = SecondsSince(submit_time);
    ticket->Complete(std::move(resp));
    return ticket;
  }

  Status reject_status;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    if (queued_ >= config_.max_queue_depth) {
      // Check and (non-)enqueue are one critical section: the queue bound
      // is exact even under racing Submits.
      ++stats_.rejected;
      reject_status = Status::ResourceExhausted(
          "serving queue full (" + std::to_string(queued_) + " queued, " +
          std::to_string(executing_) + " executing); retry later");
    } else {
      ++stats_.accepted;
      auto it = queues_.find(request.tenant);
      if (it == queues_.end()) {
        tenant_order_.push_back(request.tenant);
        it = queues_.emplace(request.tenant, std::deque<QueuedItem>()).first;
      }
      QueuedItem item;
      item.request = std::move(request);
      item.spec = *spec;
      item.ticket = ticket;
      item.submit_time = submit_time;
      it->second.push_back(std::move(item));
      ++queued_;
    }
  }
  if (!reject_status.ok()) {
    ServeResponse resp;
    resp.status = std::move(reject_status);
    resp.rejected = true;
    resp.wall_s = SecondsSince(submit_time);
    ticket->Complete(std::move(resp));
    return ticket;
  }
  work_cv_.notify_one();
  return ticket;
}

ServeResponse ServingDriver::Execute(ServeRequest request) {
  return Submit(std::move(request))->Wait();
}

void ServingDriver::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] { return queued_ == 0 && executing_ == 0; });
}

bool ServingDriver::PopNext(QueuedItem* item) {
  if (tenant_order_.empty()) return false;
  const std::size_t n = tenant_order_.size();
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t i = (rr_cursor_ + step) % n;
    const std::string& tenant = tenant_order_[i];
    auto& q = queues_[tenant];
    if (q.empty()) continue;
    *item = std::move(q.front());
    q.pop_front();
    --queued_;
    // Weighted round-robin: stay on this tenant until its weight is spent
    // (skipping ahead past empty tenants starts a fresh turn).
    turn_served_ = (i == rr_cursor_) ? turn_served_ + 1 : 1;
    auto weight_it = config_.tenant_weights.find(tenant);
    const int weight =
        weight_it != config_.tenant_weights.end() && weight_it->second > 0
            ? weight_it->second
            : 1;
    if (turn_served_ >= weight) {
      rr_cursor_ = (i + 1) % n;
      turn_served_ = 0;
    } else {
      rr_cursor_ = i;
    }
    return true;
  }
  return false;
}

void ServingDriver::WorkerLoop() {
  for (;;) {
    QueuedItem item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
      if (stop_ && queued_ == 0) return;
      if (!PopNext(&item)) continue;
      ++executing_;
    }

    ServeResponse resp = RunOne(item);
    resp.wall_s = SecondsSince(item.submit_time);

    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.completed;
      if (!resp.status.ok()) ++stats_.failed;
      if (resp.status.IsDeadlineExceeded()) ++stats_.deadline_exceeded;
      if (resp.status.IsIOError()) ++stats_.io_errors;
      if (resp.status.IsDataCorruption()) ++stats_.corruptions;
      // Only executed requests reach this loop (admission rejects complete
      // in Submit), so ResourceExhausted here means the run was shed.
      if (resp.status.IsResourceExhausted()) ++stats_.shed;
      if (resp.cache_hit) ++stats_.cache_hits;
      Accumulate(&stats_.aggregate, resp.metrics);
      --executing_;
    }
    drain_cv_.notify_all();

    // Complete outside the lock: Wait()ers may immediately Submit more.
    item.ticket->Complete(std::move(resp));
  }
}

ServeResponse ServingDriver::RunOne(const QueuedItem& item) {
  const PlanSpec& spec = *item.spec;
  const ServeRequest& req = item.request;
  ServeResponse resp;

  const CacheKey key{spec.name, req.params.Fingerprint(),
                     spec.input_fingerprint};
  const bool cacheable = spec.cacheable && req.use_cache && cache_.enabled();
  if (cacheable) {
    if (std::shared_ptr<const CachedResult> hit = cache_.Lookup(key)) {
      // The memoized response IS the original computation's response,
      // byte for byte — output, metrics, and trace all replayed.
      resp.status = hit->status;
      resp.output = hit->output;
      resp.metrics = hit->metrics;
      resp.trace_json = hit->trace_json;
      resp.cache_hit = true;
      return resp;
    }
  }

  // Per-request isolation: a fresh Cluster on THIS worker thread (which
  // becomes its driver thread), sharing only the real thread pool.
  engine::ClusterConfig cfg = config_.cluster;
  cfg.shared_pool = pool_.get();
  cfg.recovery.run_deadline_s =
      req.deadline_s >= 0.0 ? req.deadline_s : config_.default_deadline_s;

  // Serving-level real-fault retry: when a run ends in kIOError /
  // kDataCorruption after the engine's own recovery gave up, re-run the
  // whole plan on a fresh Cluster with the fault epoch advanced (fresh
  // deterministic draws), after a doubling real-time backoff.
  // kResourceExhausted is shed, never retried.
  obs::TraceRecorder recorder;
  int fault_retries = 0;
  const int max_attempts = std::max(0, config_.real_fault_retries) + 1;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      ++fault_retries;
      if (config_.real_fault_backoff_ms > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            config_.real_fault_backoff_ms *
            static_cast<double>(int64_t{1} << (attempt - 1))));
      }
      recorder = obs::TraceRecorder();  // keep only this attempt's lane
    }
    cfg.real_faults.initial_epoch =
        config_.cluster.real_faults.initial_epoch + attempt;
    engine::Cluster cluster(cfg);
    if (config_.record_traces) {
      recorder.SetRunNameHint(RunName(spec, req.params));
      cluster.set_trace(&recorder);
    }

    resp.status = engine::RunWithRecovery(
        &cluster,
        [&](int /*attempt*/) {
          // A plan body that throws fails THIS request typed instead of
          // unwinding the serving worker into std::terminate.
          try {
            resp.output = spec.body(&cluster, req.params);
          } catch (const std::exception& e) {
            cluster.Fail(Status::Internal(
                std::string("uncaught exception in plan body: ") + e.what()));
          } catch (...) {
            cluster.Fail(
                Status::Internal("uncaught non-std exception in plan body"));
          }
        },
        "serve");
    resp.metrics = cluster.metrics();
    if (resp.status.ok() ||
        !(resp.status.IsIOError() || resp.status.IsDataCorruption())) {
      break;
    }
  }
  if (fault_retries > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.real_fault_retries += fault_retries;
  }
  if (config_.record_traces) {
    resp.trace_json = obs::ChromeTraceToString(recorder);
    std::lock_guard<std::mutex> lock(mu_);
    for (obs::RunTrace& run : recorder.mutable_runs()) {
      combined_trace_.AppendRun(std::move(run));
    }
  }

  if (cacheable && resp.status.ok()) {
    auto cached = std::make_shared<CachedResult>();
    cached->status = resp.status;
    cached->output = resp.output;
    cached->metrics = resp.metrics;
    cached->trace_json = resp.trace_json;
    cache_.Insert(key, std::move(cached));
  }
  return resp;
}

ServingDriver::Stats ServingDriver::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats = stats_;
  stats.cache = cache_.GetStats();
  stats.aggregate.cache_hits = stats.cache.hits;
  stats.aggregate.cache_misses = stats.cache.misses;
  stats.aggregate.cache_evictions = stats.cache.evictions;
  return stats;
}

void ServingDriver::ExportCombinedTrace(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  obs::WriteChromeTrace(combined_trace_, os);
}

}  // namespace matryoshka::serve
