#ifndef MATRYOSHKA_CORE_LIFTING_CONTEXT_H_
#define MATRYOSHKA_CORE_LIFTING_CONTEXT_H_

#include <cstdint>
#include <utility>

#include "core/optimizer.h"
#include "core/tag.h"
#include "engine/bag.h"
#include "engine/cluster.h"

namespace matryoshka::core {

/// Per-lifted-UDF metadata (Sec. 8.1): the bag of tags identifying the
/// original UDF invocations, their count (= the size of every InnerScalar
/// inside this UDF), and the optimizer making physical choices for the
/// lifted operations.
///
/// All InnerScalars inside one lifted UDF have exactly `num_tags` elements —
/// tags are in one-to-one correspondence with the calls that would have been
/// made to the original UDF — which is why this size is known *before* any
/// lifted operation runs, enabling partition-count and join-strategy choices
/// that a generic engine optimizer could not make (Sec. 8.2).
///
/// LiftingContext is a cheap value type (a shared bag handle plus a few
/// scalars); primitives store copies. A lifted loop narrows the context each
/// iteration as inner computations finish.
class LiftingContext {
 public:
  LiftingContext(engine::Cluster* cluster, engine::Bag<Tag> tags,
                 int64_t num_tags, OptimizerOptions options = {})
      : cluster_(cluster),
        tags_(std::move(tags)),
        num_tags_(num_tags),
        options_(options) {}

  engine::Cluster* cluster() const { return cluster_; }
  /// One element per original UDF invocation still alive in this context.
  /// Needed by operations that must produce output for empty inner bags
  /// (e.g. a lifted count must emit 0 for a group with no elements).
  const engine::Bag<Tag>& tags() const { return tags_; }
  int64_t num_tags() const { return num_tags_; }
  const OptimizerOptions& options() const { return options_; }

  Optimizer optimizer() const {
    // Cluster-aware so degraded re-planning sees the live machine count;
    // the cluster's trace sink (if any) captures every lowering decision.
    return Optimizer(cluster_, options_, cluster_->trace());
  }

  /// Partition count for InnerScalar-sized bags (Sec. 8.1).
  int64_t ScalarPartitions() const {
    return optimizer().ScalarPartitions(num_tags_);
  }

  /// A context over a subset of this context's tags (used by lifted control
  /// flow, where finished loops / untaken branches drop out).
  LiftingContext Narrowed(engine::Bag<Tag> tags, int64_t num_tags) const {
    return LiftingContext(cluster_, std::move(tags), num_tags, options_);
  }

 private:
  engine::Cluster* cluster_;
  engine::Bag<Tag> tags_;
  int64_t num_tags_;
  OptimizerOptions options_;
};

}  // namespace matryoshka::core

#endif  // MATRYOSHKA_CORE_LIFTING_CONTEXT_H_
