#ifndef MATRYOSHKA_SERVE_REGISTRY_H_
#define MATRYOSHKA_SERVE_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/cluster.h"
#include "lang/expr.h"
#include "serve/plan.h"

/// The catalog side of the serving layer: named, parameterized logical
/// plans registered once and executed many times by the ServingDriver.
///
/// A plan body is a pure function of (cluster, params): it builds bags on
/// the request's OWN Cluster and returns a PlanOutput. It must not touch
/// any state shared across requests — that is the whole serving isolation
/// contract (DESIGN.md); the registry is the only shared structure and is
/// read-only after registration.
namespace matryoshka::serve {

/// A plan's executable body. Runs on a ServingDriver worker thread, on a
/// per-request Cluster whose driver thread is that worker; may be invoked
/// concurrently with itself (different clusters), so it must be
/// re-entrant and capture only immutable state.
using PlanFn =
    std::function<PlanOutput(engine::Cluster*, const PlanParams&)>;

struct PlanSpec {
  std::string name;
  std::string description;
  PlanFn body;
  /// Content fingerprint of the plan's input data; the input leg of the
  /// memo-cache key (plan, params, input). Callers that rebuild inputs
  /// per request must fold the real data in here (MakeLangPlanSpec does);
  /// 0 means "constant input baked into the body".
  uint64_t input_fingerprint = 0;
  /// Opt-out for plans whose body is not a pure function of
  /// (params, input) — e.g. plans reading ambient state.
  bool cacheable = true;
};

/// Name -> PlanSpec map. Registration is mutex-guarded; lookups return
/// stable pointers (specs are heap-allocated and never removed), so the
/// driver's workers can hold a `const PlanSpec*` without the lock.
class PlanRegistry {
 public:
  PlanRegistry() = default;
  PlanRegistry(const PlanRegistry&) = delete;
  PlanRegistry& operator=(const PlanRegistry&) = delete;

  /// InvalidArgument on an empty/duplicate name or a null body.
  Status Register(PlanSpec spec);

  /// InvalidArgument (with the known names) when `name` is not registered.
  Result<const PlanSpec*> Lookup(const std::string& name) const;

  std::vector<std::string> PlanNames() const;
  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<PlanSpec>> plans_;
};

/// One named input of a lang-program plan. Rows are shared immutably
/// across requests; each request Parallelizes its own copy onto its own
/// cluster (isolation: no cross-request Bag sharing).
struct LangSource {
  std::string name;
  std::shared_ptr<const std::vector<lang::Value>> rows;
  int64_t partitions = -1;  // cluster default parallelism if <= 0
};

/// Wraps a surface-language program (src/lang) as a registrable PlanSpec:
/// runs the parsing phase ONCE here, at registration (compile time, Sec.
/// 4.1.1), and per request binds the sources plus every request param as a
/// single-element source bag named after the param, then runs the lowering
/// phase (runtime, Sec. 4.1.2). The input fingerprint folds all source
/// rows, so the memo-cache key covers the data. Fails with the parsing
/// phase's status when the program does not rewrite.
Result<PlanSpec> MakeLangPlanSpec(std::string name,
                                  const lang::Program& surface,
                                  std::vector<LangSource> sources,
                                  std::string description = "");

}  // namespace matryoshka::serve

#endif  // MATRYOSHKA_SERVE_REGISTRY_H_
