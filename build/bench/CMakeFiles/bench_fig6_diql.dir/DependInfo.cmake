
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig6_diql.cc" "bench/CMakeFiles/bench_fig6_diql.dir/bench_fig6_diql.cc.o" "gcc" "bench/CMakeFiles/bench_fig6_diql.dir/bench_fig6_diql.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/matryoshka_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/matryoshka_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/matryoshka_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/matryoshka_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
