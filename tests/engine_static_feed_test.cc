// The static feed representation (engine/fused_feed.h) and its process-wide
// switches: strict MATRYOSHKA_FUSION / MATRYOSHKA_STATIC_FEEDS parsing, the
// forced boundaries (inexact counts, depth cap) under static chains, the
// sibling-memoization re-rooting contract, and a compile guard that the
// narrow-op path stays usable for move-only (non-spillable) element types.
//
// Bit-identity of the static arm against the type-erased and eager arms is
// locked by engine_parallel_determinism_test; this file covers the
// representation-specific mechanics those A/B sweeps cannot observe.

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "engine/bag.h"
#include "engine/cluster.h"
#include "engine/extra_ops.h"
#include "engine/ops.h"
#include "gtest/gtest.h"

namespace matryoshka::engine {

/// A deliberately move-only, non-trivially-copyable element: the compile
/// guard below pins that pure map chains neither copy elements nor drag in
/// the spill serializer for types that cannot support either.
struct MoveOnlyElem {
  std::unique_ptr<int64_t> v;
};

/// MaybeAutoCheckpoint probes RealBagBytes on every narrow-op output, so
/// even a never-spilled element type needs a size estimate.
inline std::size_t EstimateSize(const MoveOnlyElem&) {
  return sizeof(MoveOnlyElem) + sizeof(int64_t);
}

namespace {

/// Sets an environment variable for the enclosing scope and restores the
/// previous value (or unsets) on destruction, so tests stay hermetic even
/// when scripts/check.sh runs the binary with the A/B switches exported.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) prev_ = old;
    if (value == nullptr) {
      ::unsetenv(name);
    } else {
      ::setenv(name, value, /*overwrite=*/1);
    }
  }
  ~ScopedEnv() {
    if (prev_.has_value()) {
      ::setenv(name_, prev_->c_str(), /*overwrite=*/1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> prev_;
};

ClusterConfig SerialConfig() {
  ClusterConfig cfg;
  cfg.num_machines = 2;
  cfg.cores_per_machine = 2;
  cfg.default_parallelism = 4;
  cfg.fusion.enabled = true;
  return cfg;
}

Bag<std::pair<int64_t, int64_t>> MakePairs(Cluster* c) {
  std::vector<std::pair<int64_t, int64_t>> data;
  for (int64_t i = 0; i < 200; ++i) data.emplace_back(i % 7, i);
  return Parallelize(c, std::move(data), 4);
}

// --- Strict "0"/"1" parsing of the process-wide A/B switches ---------------

TEST(BinaryEnvOverrideTest, ExactZeroAndOneAreHonored) {
  {
    ScopedEnv fusion("MATRYOSHKA_FUSION", "0");
    ScopedEnv feeds("MATRYOSHKA_STATIC_FEEDS", "1");
    Cluster c(SerialConfig());
    EXPECT_FALSE(c.config().fusion.enabled);
    EXPECT_TRUE(c.config().fusion.static_feeds);
  }
  {
    ScopedEnv fusion("MATRYOSHKA_FUSION", "1");
    ScopedEnv feeds("MATRYOSHKA_STATIC_FEEDS", "0");
    ClusterConfig cfg = SerialConfig();
    cfg.fusion.enabled = false;  // env must override the config either way
    Cluster c(cfg);
    EXPECT_TRUE(c.config().fusion.enabled);
    EXPECT_FALSE(c.config().fusion.static_feeds);
  }
}

TEST(BinaryEnvOverrideTest, UnsetKeepsConfiguredDefaults) {
  ScopedEnv fusion("MATRYOSHKA_FUSION", nullptr);
  ScopedEnv feeds("MATRYOSHKA_STATIC_FEEDS", nullptr);
  Cluster c(SerialConfig());
  EXPECT_TRUE(c.config().fusion.enabled);
  EXPECT_TRUE(c.config().fusion.static_feeds);
}

#if defined(GTEST_HAS_DEATH_TEST)
TEST(BinaryEnvOverrideDeathTest, JunkFusionValueFailsLoudly) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  for (const char* junk : {"", "2", "01", "true", "yes", " 1"}) {
    ScopedEnv fusion("MATRYOSHKA_FUSION", junk);
    EXPECT_DEATH({ Cluster c(SerialConfig()); },
                 "MATRYOSHKA_FUSION.*not a valid binary override")
        << "value '" << junk << "'";
  }
}

TEST(BinaryEnvOverrideDeathTest, JunkStaticFeedsValueFailsLoudly) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  for (const char* junk : {"", "on", "10", "TRUE"}) {
    ScopedEnv feeds("MATRYOSHKA_STATIC_FEEDS", junk);
    EXPECT_DEATH({ Cluster c(SerialConfig()); },
                 "MATRYOSHKA_STATIC_FEEDS.*not a valid binary override")
        << "value '" << junk << "'";
  }
}
#endif  // GTEST_HAS_DEATH_TEST

// --- Forced boundaries under the static representation ---------------------

TEST(StaticFeedTest, ChainOfNarrowOpsStaysPendingUntilForced) {
  ScopedEnv fusion("MATRYOSHKA_FUSION", "1");
  ScopedEnv feeds("MATRYOSHKA_STATIC_FEEDS", "1");
  Cluster c(SerialConfig());
  auto s1 = Map(MakePairs(&c), [](const std::pair<int64_t, int64_t>& p) {
    return std::pair<int64_t, int64_t>(p.first, p.second + 1);
  });
  auto s2 = MapValues(s1, [](int64_t v) { return v * 3; });
  auto s3 = Map(s2, [](const std::pair<int64_t, int64_t>& p) {
    return std::pair<int64_t, int64_t>(p.first ^ 1, p.second);
  });
  auto s4 = MapValues(s3, [](int64_t v) { return v - 2; });
  EXPECT_TRUE(s4.pending());
  EXPECT_EQ(s4.pending_chain_ops(), 4);

  {
    // Env is latched at Cluster construction, so the eager reference needs
    // its own cluster built under MATRYOSHKA_FUSION=0.
    ScopedEnv off("MATRYOSHKA_FUSION", "0");
    Cluster rebuilt(SerialConfig());
    auto e4 = MapValues(
        Map(MapValues(Map(MakePairs(&rebuilt),
                          [](const std::pair<int64_t, int64_t>& p) {
                            return std::pair<int64_t, int64_t>(p.first,
                                                               p.second + 1);
                          }),
                      [](int64_t v) { return v * 3; }),
            [](const std::pair<int64_t, int64_t>& p) {
              return std::pair<int64_t, int64_t>(p.first ^ 1, p.second);
            }),
        [](int64_t v) { return v - 2; });
    EXPECT_FALSE(e4.pending());
    EXPECT_EQ(Collect(s4), Collect(e4));
  }
}

TEST(StaticFeedTest, InexactCountsForceABoundaryMidChain) {
  ScopedEnv fusion("MATRYOSHKA_FUSION", "1");
  ScopedEnv feeds("MATRYOSHKA_STATIC_FEEDS", "1");
  Cluster c(SerialConfig());
  // FlatMap demotes the tracked counts to a bound, so the next narrow op
  // must materialize the chain and start fresh on the forced output.
  auto flat = FlatMap(Keys(MakePairs(&c)), [](int64_t k) {
    return std::vector<int64_t>{k, k + 100};
  });
  EXPECT_TRUE(flat.pending());
  EXPECT_FALSE(flat.counts_exact());
  auto next = Map(flat, [](int64_t v) { return v * 2; });
  // ComposeReady forced the inexact upstream; the new op starts a fresh
  // one-op chain over the materialization.
  EXPECT_TRUE(next.pending());
  EXPECT_EQ(next.pending_chain_ops(), 1);
  std::vector<int64_t> got = Collect(next);
  ASSERT_EQ(got.size(), 400u);
  EXPECT_TRUE(c.ok());
}

TEST(StaticFeedTest, DepthCapForcesMidChainGracefully) {
  ScopedEnv fusion("MATRYOSHKA_FUSION", "1");
  ScopedEnv feeds("MATRYOSHKA_STATIC_FEEDS", "1");
  ClusterConfig cfg = SerialConfig();
  cfg.fusion.max_chain_depth = 2;
  Cluster c(cfg);
  // Literal auto chaining keeps extending the concrete FusedBag chain, so
  // the cap is enforced on the zero-erasure path itself.
  auto s1 = Map(MakePairs(&c), [](const std::pair<int64_t, int64_t>& p) {
    return std::pair<int64_t, int64_t>(p.first, p.second + 1);
  });
  auto s2 = MapValues(s1, [](int64_t v) { return v + 10; });
  EXPECT_EQ(s2.pending_chain_ops(), 2);
  auto s3 = MapValues(s2, [](int64_t v) { return v * 2; });
  // s2 hit the cap: composing s3 forced it and started a fresh chain.
  EXPECT_TRUE(s3.pending());
  EXPECT_EQ(s3.pending_chain_ops(), 1);
  std::vector<std::pair<int64_t, int64_t>> got = Collect(s3);
  ASSERT_EQ(got.size(), 200u);
  EXPECT_EQ(got.front().second, (0 + 1 + 10) * 2);
  EXPECT_TRUE(c.ok());
}

TEST(StaticFeedTest, SiblingForceMemoizesAndLaterOpsReuse) {
  // Once any handle of a shared pending chain forces it, later narrow ops
  // must re-root at the memoized partitions instead of re-running the
  // chain's UDFs (the udf-call counter would double otherwise).
  for (const char* static_arm : {"0", "1"}) {
    ScopedEnv fusion("MATRYOSHKA_FUSION", "1");
    ScopedEnv feeds("MATRYOSHKA_STATIC_FEEDS", static_arm);
    Cluster c(SerialConfig());
    auto calls = std::make_shared<int64_t>(0);
    auto mapped = Map(MakePairs(&c),
                      [calls](const std::pair<int64_t, int64_t>& p) {
                        ++*calls;
                        return std::pair<int64_t, int64_t>(p.first,
                                                           p.second * 2);
                      });
    EXPECT_TRUE(mapped.pending());
    // Force through a sibling handle: `mapped` itself stays pending but its
    // shared chain state now carries the memoized partitions — the exact
    // state in which a composing consumer must NOT copy and re-run the
    // chain.
    Bag<std::pair<int64_t, int64_t>> sibling = mapped;
    sibling.Force();
    EXPECT_EQ(*calls, 200) << "static=" << static_arm;
    EXPECT_TRUE(mapped.pending());
    EXPECT_TRUE(mapped.pending_materialized());
    auto downstream = MapValues(mapped, [](int64_t v) { return v + 1; });
    std::vector<std::pair<int64_t, int64_t>> got = Collect(downstream);
    ASSERT_EQ(got.size(), 200u);
    EXPECT_EQ(*calls, 200) << "static=" << static_arm
                           << ": composing past a memoized chain re-ran it";
  }
}

// --- Compile guard: move-only, non-spillable element types ------------------

TEST(StaticFeedTest, MoveOnlyElementsFlowThroughNarrowChains) {
  for (const char* static_arm : {"0", "1"}) {
    ScopedEnv fusion("MATRYOSHKA_FUSION", "1");
    ScopedEnv feeds("MATRYOSHKA_STATIC_FEEDS", static_arm);
    Cluster c(SerialConfig());
    std::vector<MoveOnlyElem> data;
    for (int64_t i = 0; i < 64; ++i) {
      data.push_back(MoveOnlyElem{std::make_unique<int64_t>(i)});
    }
    auto bag = Parallelize(&c, std::move(data), 4);
    auto bumped = Map(bag, [](const MoveOnlyElem& e) {
      return MoveOnlyElem{std::make_unique<int64_t>(*e.v + 1)};
    });
    auto summed = Map(bumped, [](const MoveOnlyElem& e) { return *e.v; });
    EXPECT_EQ(Count(summed), 64);
    std::vector<int64_t> values = Collect(summed);
    EXPECT_EQ(std::accumulate(values.begin(), values.end(), int64_t{0}),
              64 * 65 / 2)
        << "static=" << static_arm;
    EXPECT_TRUE(c.ok());
  }
}

}  // namespace
}  // namespace matryoshka::engine
