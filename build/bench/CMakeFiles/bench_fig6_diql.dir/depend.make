# Empty dependencies file for bench_fig6_diql.
# This may be replaced when dependencies are built.
