#!/usr/bin/env sh
# Builds and runs the test suite. Usage:
#   scripts/check.sh            # RelWithDebInfo build + full ctest
#   scripts/check.sh asan       # ASan+UBSan build + full ctest
#   scripts/check.sh faults     # RelWithDebInfo build + fault-suite only
#   scripts/check.sh obs        # obs suite + end-to-end --trace/--metrics-json
#   scripts/check.sh recovery   # faults+recovery suites under default AND
#                               # asan, + bench_recovery metrics round-trip
#   scripts/check.sh tsan       # thread-pool + parallel-determinism suites
#                               # under ThreadSanitizer
#   scripts/check.sh perf       # Release build + real wall-clock throughput
#                               # bench with metrics-JSON schema validation,
#                               # then the tsan suites
#   scripts/check.sh fusion     # determinism+faults+recovery suites with
#                               # ClusterConfig::fusion forced on AND off
#                               # (MATRYOSHKA_FUSION), then the tsan suites
#                               # both ways + the fused chain bench under TSan
#   scripts/check.sh serve      # serving suite under the default preset AND
#                               # ThreadSanitizer, + bench_serving metrics
#                               # round-trip with latency-schema validation
#   scripts/check.sh spill      # external-execution (out-of-core) contract:
#                               # spill+faults suites with a tiny real memory
#                               # budget forced process-wide
#                               # (MATRYOSHKA_REAL_BUDGET) under the default
#                               # preset AND ASan, then the external/parallel
#                               # determinism suites under TSan both
#                               # unbounded and forced
#   scripts/check.sh chaos      # real-fault contract: the chaos suite, then
#                               # the spill+faults suites with a recoverable
#                               # real-IO fault storm AND a tiny budget forced
#                               # process-wide (MATRYOSHKA_REAL_FAULTS +
#                               # MATRYOSHKA_REAL_BUDGET) under the default
#                               # preset and ASan, the chaos suites under
#                               # TSan, and a chaos-bench A/B with the four
#                               # real_io counter keys validated (nonzero
#                               # under storm, exactly zero calm)
# Any extra arguments are forwarded to ctest.
set -eu

cd "$(dirname "$0")/.."

mode="${1:-default}"
[ $# -gt 0 ] && shift

case "$mode" in
  default)
    preset=default; test_preset=default ;;
  asan)
    preset=asan; test_preset=asan ;;
  faults)
    preset=default; test_preset=faults ;;
  obs)
    preset=default; test_preset=obs ;;
  recovery)
    preset=default; test_preset=recovery ;;
  tsan)
    preset=tsan; test_preset=tsan ;;
  perf)
    preset=perf; test_preset="" ;;
  fusion)
    preset=default; test_preset="" ;;
  serve)
    preset=default; test_preset=serve ;;
  spill)
    preset=default; test_preset="" ;;
  chaos)
    preset=default; test_preset=chaos ;;
  *)
    echo "usage: scripts/check.sh" \
         "[default|asan|faults|obs|recovery|tsan|perf|fusion|serve|spill|chaos]" \
         "[ctest args...]" >&2
    exit 2 ;;
esac

cmake --preset "$preset"
if [ "$mode" = perf ]; then
  # perf only needs the throughput bench, not the full tree.
  cmake --build --preset perf -j "$(nproc)" --target bench_engine_throughput
else
  cmake --build --preset "$preset" -j "$(nproc)"
fi
if [ -n "$test_preset" ]; then
  ctest --preset "$test_preset" -j "$(nproc)" "$@"
fi

if [ "$mode" = perf ]; then
  # Real wall-clock throughput: every wide operator with the execution pool
  # off and on, items/second reported by google-benchmark and the per-run
  # wall numbers carried in the metrics JSON. Validated for schema, for both
  # pool arms being present, and for sane (positive) wall measurements.
  out_dir="build-perf/perf-check"
  mkdir -p "$out_dir"
  build-perf/bench/bench_engine_throughput \
    --benchmark_min_time=0.05 \
    --benchmark_min_warmup_time=0 \
    --metrics-json="$out_dir/metrics.json"
  python3 - "$out_dir/metrics.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "matryoshka-bench-metrics-v1", doc["schema"]
assert doc["runs"], "no runs recorded"
arms = set()
chain_arms = set()
budget_arms = set()
chain_rates = {}
for run in doc["runs"]:
    name = run["name"]
    assert name.startswith("throughput/"), name
    arms.add(name.rsplit("/", 1)[-1])
    parts = name.split("/")
    if parts[1] == "chain":
        # throughput/chain[/deep]/<size>/<feed arm>/<pool arm>
        arm = parts[-2]
        assert arm in ("fusion0", "fusion1static0", "fusion1static1"), name
        chain_arms.add(arm)
        chain_rates[(tuple(parts[1:-2]), parts[-1], arm)] = \
            run["wall"]["elements_per_s"]
    if parts[1] == "budget":
        # throughput/budget/<op>/<budget arm>/<pool arm>
        assert parts[3] in ("unbounded", "bounded4mb"), name
        budget_arms.add(parts[3])
        m = run["metrics"]
        for key in ("real_spilled_bytes", "real_spill_events",
                    "real_spill_runs"):
            assert key in m, f"missing {key} in {name}"
        if parts[3] == "unbounded":
            assert m["real_spilled_bytes"] == 0, name
        else:
            # The budgeted arm ran an input larger than its budget: it must
            # have really spilled.
            assert m["real_spilled_bytes"] > 0, name
            assert m["real_spill_events"] > 0, name
    wall = run["wall"]
    assert wall["real_s"] > 0, name
    assert wall["elements"] > 0, name
    assert wall["elements_per_s"] > 0, name
assert arms == {"pool0", "pool1"}, arms
assert chain_arms == {"fusion0", "fusion1static0", "fusion1static1"}, \
    chain_arms
assert budget_arms == {"unbounded", "bounded4mb"}, budget_arms
# Representation contract on the heap-payload chains, pool off (the arm the
# headline numbers quote). Floors are deliberately conservative — this is a
# short smoke run on a host with ±10-20% run-to-run noise, not the committed
# BENCH_throughput.json measurement — but they catch the two real
# regressions: fusion that stopped paying at all, and a static
# representation materially slower than the erased chains it replaces.
for fam in (("chain", "large"), ("chain", "deep", "large")):
    base = chain_rates[(fam, "pool0", "fusion0")]
    erased = chain_rates[(fam, "pool0", "fusion1static0")]
    static = chain_rates[(fam, "pool0", "fusion1static1")]
    assert static / base >= 1.3, ("/".join(fam), static / base)
    assert static / erased >= 0.9, ("/".join(fam), static / erased)
print("ok:", sys.argv[1], f"({len(doc['runs'])} runs, chain arms validated)")
EOF
  # The parallel kernel must also be clean under ThreadSanitizer.
  cmake --preset tsan
  cmake --build --preset tsan -j "$(nproc)"
  ctest --preset tsan -j "$(nproc)" "$@"
fi

if [ "$mode" = fusion ]; then
  # Fusion contract: the determinism, fault-injection, and recovery suites
  # must pass with the fused narrow-op pipeline forced on AND forced off,
  # and — when fused — with the static feed representation forced on AND
  # off (the suites themselves assert the arms are bit-identical, but
  # running the whole suite under each process-wide override also locks the
  # surrounding tests' exact-value expectations every way). fusion=0 makes
  # the feed representation irrelevant, so that axis is only swept fused.
  for fusion in 1 0; do
    for feeds in 1 0; do
      [ "$fusion" = 0 ] && [ "$feeds" = 0 ] && continue
      echo "== fusion=$fusion static_feeds=$feeds: faults+recovery suites =="
      MATRYOSHKA_FUSION="$fusion" MATRYOSHKA_STATIC_FEEDS="$feeds" \
        ctest --preset recovery -j "$(nproc)" "$@"
    done
  done
  # The fused single-pass kernel must also be clean under ThreadSanitizer
  # in both feed representations: run the parallel-determinism suite under
  # every arm, then exercise the chain benches (pool on) under TSan
  # directly, static feeds off and on.
  cmake --preset tsan
  cmake --build --preset tsan -j "$(nproc)"
  for fusion in 1 0; do
    for feeds in 1 0; do
      [ "$fusion" = 0 ] && [ "$feeds" = 0 ] && continue
      echo "== fusion=$fusion static_feeds=$feeds: tsan suites =="
      MATRYOSHKA_FUSION="$fusion" MATRYOSHKA_STATIC_FEEDS="$feeds" \
        ctest --preset tsan -j "$(nproc)" "$@"
    done
  done
  for feeds in 0 1; do
    MATRYOSHKA_STATIC_FEEDS="$feeds" build-tsan/bench/bench_engine_throughput \
      --benchmark_filter='BM_Chain' \
      --benchmark_min_time=0.02 \
      --benchmark_min_warmup_time=0 >/dev/null
  done
  echo "ok: fused chain benches clean under TSan (both feed representations)"
fi

if [ "$mode" = spill ]; then
  # External execution determinism contract: the whole spill+faults suite
  # must pass with a tiny real memory budget forced process-wide, pushing
  # EVERY wide operator through the spilling scatter and out-of-core
  # aggregation paths (the env override only applies to configs that left
  # the budget at 0/unbounded; tests with explicit budget arms are
  # unaffected by design). 4096 bytes divides into single-digit per-worker
  # quotas, so flushes happen on nearly every element.
  budget=4096
  echo "== spill: budget=$budget, default preset =="
  MATRYOSHKA_REAL_BUDGET="$budget" ctest --preset spill -j "$(nproc)" "$@"
  # Spill-file IO and cleanup must be clean under ASan/UBSan (leak checking
  # catches descriptor-lifetime bugs as buffer leaks).
  cmake --preset asan
  cmake --build --preset asan -j "$(nproc)"
  echo "== spill: budget=$budget, asan =="
  MATRYOSHKA_REAL_BUDGET="$budget" ctest --preset spill-asan -j "$(nproc)" "$@"
  # The external scatter/merge kernel must also be clean under
  # ThreadSanitizer — forced and unbounded.
  cmake --preset tsan
  cmake --build --preset tsan -j "$(nproc)"
  echo "== spill: budget=$budget, tsan =="
  MATRYOSHKA_REAL_BUDGET="$budget" ctest --preset spill-tsan -j "$(nproc)" "$@"
  echo "== spill: unbounded, tsan =="
  ctest --preset spill-tsan -j "$(nproc)" "$@"
fi

if [ "$mode" = chaos ]; then
  # The real-fault contract: first the chaos suite proper (explicit
  # per-test plans: hard faults, degradation policies, determinism sweeps),
  # which already ran above via test_preset=chaos. Then force a RECOVERABLE
  # real-IO storm process-wide — transient EIO plus short transfers at 20%
  # per site — together with a tiny real budget, and require the whole
  # spill+faults suite to still pass bit-identically: the hardened IO layer
  # must absorb every injected fault without changing one byte of output.
  # (The env storm only applies to configs whose own RealFaultPlan is
  # inactive, and never arms ENOSPC/corruption/alloc faults by design.)
  storm="0.2:2021"
  budget=4096
  echo "== chaos: storm=$storm budget=$budget, default preset =="
  MATRYOSHKA_REAL_FAULTS="$storm" MATRYOSHKA_REAL_BUDGET="$budget" \
    ctest --preset spill -j "$(nproc)" "$@"
  # The retry/backoff/short-transfer loops must be clean under ASan/UBSan.
  cmake --preset asan
  cmake --build --preset asan -j "$(nproc)"
  echo "== chaos: storm=$storm budget=$budget, asan =="
  MATRYOSHKA_REAL_FAULTS="$storm" MATRYOSHKA_REAL_BUDGET="$budget" \
    ctest --preset chaos-asan -j "$(nproc)" "$@"
  # Concurrent fault draws and the degradation paths must be TSan-clean.
  cmake --preset tsan
  cmake --build --preset tsan -j "$(nproc)"
  echo "== chaos: tsan =="
  ctest --preset chaos-tsan -j "$(nproc)" "$@"
  echo "== chaos: storm=$storm, tsan =="
  MATRYOSHKA_REAL_FAULTS="$storm" ctest --preset chaos-tsan -j "$(nproc)" "$@"
  # End-to-end A/B: the chaos bench arm, calm vs storm, with the four
  # real_io counter keys validated in the metrics JSON — nonzero where the
  # storm must have injected and recovered, exactly zero on the calm arm.
  out_dir="build/chaos-check"
  mkdir -p "$out_dir"
  build/bench/bench_engine_throughput \
    --benchmark_filter='BM_ShuffleGroup_Chaos' \
    --benchmark_min_time=0.02 \
    --benchmark_min_warmup_time=0 \
    --metrics-json="$out_dir/metrics.json" >/dev/null
  python3 - "$out_dir/metrics.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "matryoshka-bench-metrics-v1", doc["schema"]
arms = set()
keys = ("real_io_faults_injected", "real_io_retries", "checksum_failures",
        "inmemory_fallbacks")
for run in doc["runs"]:
    name = run["name"]
    if not name.startswith("throughput/chaos/"):
        continue
    # throughput/chaos/<op>/<storm arm>/<pool arm>
    arm = name.split("/")[3]
    arms.add(arm)
    m = run["metrics"]
    for key in keys:
        assert key in m, f"missing {key} in {name}"
    assert run["ok"], f"{name} did not recover"
    if arm == "calm":
        for key in keys:
            assert m[key] == 0, f"{name}: {key}={m[key]} on the calm arm"
    else:
        assert m["real_io_faults_injected"] > 0, name
        assert m["real_io_retries"] > 0, name
        assert m["inmemory_fallbacks"] > 0, name
assert arms == {"calm", "storm"}, arms
print("ok:", sys.argv[1], "(chaos A/B counters validated)")
EOF
fi

if [ "$mode" = recovery ]; then
  # The recovery contract must also hold under the sanitizers.
  cmake --preset asan
  cmake --build --preset asan -j "$(nproc)"
  ctest --preset recovery-asan -j "$(nproc)" "$@"
  # End-to-end: the recovery A/B bench with --metrics-json on, validated as
  # JSON and carrying the matryoshka-bench-metrics-v1 schema with the
  # recovery counters present.
  out_dir="build/recovery-check"
  mkdir -p "$out_dir"
  build/bench/bench_recovery \
    --benchmark_min_warmup_time=0 \
    --metrics-json="$out_dir/metrics.json" >/dev/null
  python3 - "$out_dir/metrics.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "matryoshka-bench-metrics-v1", doc["schema"]
assert doc["runs"], "no runs recorded"
for run in doc["runs"]:
    m = run["metrics"]
    for key in ("checkpoints_written", "checkpoint_bytes", "driver_retries",
                "plan_fallbacks", "recovery_time_s"):
        assert key in m, f"missing {key} in {run['name']}"
print("ok:", sys.argv[1])
EOF
fi

if [ "$mode" = serve ]; then
  # The serving isolation contract must also hold under ThreadSanitizer:
  # the same suite runs with real concurrency on the shared pool.
  cmake --preset tsan
  cmake --build --preset tsan -j "$(nproc)"
  ctest --preset serve-tsan -j "$(nproc)" "$@"
  # End-to-end: the open-loop serving load bench with --metrics-json on,
  # validated for the v1 schema plus the additive latency fields.
  out_dir="build/serve-check"
  mkdir -p "$out_dir"
  build/bench/bench_serving \
    --benchmark_min_time=0.01 \
    --benchmark_min_warmup_time=0 \
    --metrics-json="$out_dir/metrics.json" >/dev/null
  python3 - "$out_dir/metrics.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "matryoshka-bench-metrics-v1", doc["schema"]
assert doc["runs"], "no runs recorded"
cache_arms = set()
for run in doc["runs"]:
    name = run["name"]
    assert name.startswith("serving/"), name
    if name.startswith("serving/sustained/"):
        cache_arms.add(name.rsplit("/", 1)[-1])
    wall = run["wall"]
    assert wall["real_s"] > 0, name
    assert wall["requests_per_s"] > 0, name
    assert 0 < wall["p50_s"] <= wall["p99_s"], name
assert cache_arms == {"cache", "nocache"}, cache_arms
print("ok:", sys.argv[1], f"({len(doc['runs'])} runs)")
EOF
fi

if [ "$mode" = obs ]; then
  # End-to-end: one bench with the observability flags on, both outputs
  # validated as JSON.
  out_dir="build/obs-check"
  mkdir -p "$out_dir"
  build/bench/bench_ablation_partitions \
    --trace="$out_dir/trace.json" \
    --metrics-json="$out_dir/metrics.json" >/dev/null
  for f in "$out_dir/trace.json" "$out_dir/metrics.json"; do
    [ -s "$f" ] || { echo "missing $f" >&2; exit 1; }
    python3 -m json.tool "$f" >/dev/null
    echo "ok: $f"
  done
fi
