#ifndef MATRYOSHKA_OBS_JSON_WRITER_H_
#define MATRYOSHKA_OBS_JSON_WRITER_H_

#include <cstdio>
#include <string>
#include <string_view>

/// Tiny JSON formatting helpers shared by the trace / plan / metrics
/// exporters. Output is deterministic (fixed formats, no locale), which is
/// what lets tests compare whole trace files byte-for-byte.
namespace matryoshka::obs {

/// JSON string escaping (quotes, backslashes, control characters).
inline std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Round-trippable double formatting ("%.17g" is enough to reproduce any
/// IEEE double exactly). NaN/inf have no JSON spelling; emit null.
inline std::string JsonDouble(double v) {
  if (v != v || v > 1.7976931348623157e308 || v < -1.7976931348623157e308) {
    return "null";
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Fixed-point microseconds for Chrome trace timestamps: simulated seconds
/// to microseconds with nanosecond resolution.
inline std::string JsonMicros(double seconds) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  return buf;
}

}  // namespace matryoshka::obs

#endif  // MATRYOSHKA_OBS_JSON_WRITER_H_
