# Empty dependencies file for engine_cost_model_test.
# This may be replaced when dependencies are built.
