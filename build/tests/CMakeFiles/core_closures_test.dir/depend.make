# Empty dependencies file for core_closures_test.
# This may be replaced when dependencies are built.
