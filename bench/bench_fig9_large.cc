// Figure 9 (Sec. 9.7): the weak-scaling experiment at 8x larger inputs on
// the larger cluster (36 machines, 40 hardware threads, 100 GB per Spark
// worker). PageRank at a 160 GB-class input (the inner-parallel baseline
// was killed when exceeding 10x Matryoshka's time; we run it and report
// it) and Bounce Rate at a 384 GB-class input (outer-parallel out of
// memory in all cases; Matryoshka ~8.9x faster than inner-parallel at 512
// inner computations).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "datagen/datagen.h"
#include "engine/bag.h"
#include "workloads/bounce_rate.h"
#include "workloads/pagerank.h"

namespace matryoshka::bench {
namespace {

using workloads::Variant;

constexpr uint64_t kSeed = 29;

Variant VariantOf(int64_t i) {
  switch (i) {
    case 0:
      return Variant::kMatryoshka;
    case 1:
      return Variant::kOuterParallel;
    default:
      return Variant::kInnerParallel;
  }
}

void BM_Fig9_PageRank(benchmark::State& state) {
  const int64_t groups = state.range(0);
  const Variant variant = VariantOf(state.range(1));
  constexpr int64_t kTotalEdges = 1 << 18;
  workloads::PageRankParams params;
  params.iterations = 10;
  engine::ClusterConfig cfg = LargePaperCluster();
  ScaleToTarget(&cfg, 160.0, kTotalEdges,
                sizeof(std::pair<int64_t, datagen::Edge>));
  auto data = datagen::GenerateGroupedEdges(
      kTotalEdges, groups, std::max<int64_t>(16, (1 << 16) / groups), 0.0,
      kSeed);
  engine::Cluster cluster(cfg);
  ObsAttach(&cluster,
            std::string("fig9/pagerank/") + workloads::VariantName(variant),
            {groups});
  for (auto _ : state) {
    cluster.Reset();
    auto bag = engine::Parallelize(&cluster, data);
    Report(state, workloads::RunPageRank(&cluster, bag, params, variant));
  }
  state.SetLabel(workloads::VariantName(variant));
}

void BM_Fig9_BounceRate(benchmark::State& state) {
  const int64_t days = state.range(0);
  const Variant variant = VariantOf(state.range(1));
  constexpr int64_t kTotalVisits = 1 << 18;
  engine::ClusterConfig cfg = LargePaperCluster();
  ScaleToTarget(&cfg, 384.0, kTotalVisits, sizeof(datagen::Visit));
  auto data = datagen::GenerateVisits(kTotalVisits, days, 0.0, 0.5, kSeed);
  engine::Cluster cluster(cfg);
  ObsAttach(&cluster,
            std::string("fig9/bounce-rate/") + workloads::VariantName(variant),
            {days});
  for (auto _ : state) {
    cluster.Reset();
    auto bag = engine::Parallelize(&cluster, data);
    Report(state, workloads::RunBounceRate(&cluster, bag, variant));
  }
  state.SetLabel(workloads::VariantName(variant));
}

void Args(benchmark::internal::Benchmark* b) {
  for (int64_t groups : {32, 128, 512}) {
    for (int64_t variant = 0; variant < 3; ++variant) {
      b->Args({groups, variant});
    }
  }
  b->UseManualTime()->Unit(benchmark::kSecond)->Iterations(1);
}

BENCHMARK(BM_Fig9_PageRank)->Apply(Args);
BENCHMARK(BM_Fig9_BounceRate)->Apply(Args);

}  // namespace
}  // namespace matryoshka::bench

MATRYOSHKA_BENCH_MAIN();
