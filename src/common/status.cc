#include "common/status.h"

namespace matryoshka {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kOutOfMemory:
      return "Out of memory";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kTaskFailed:
      return "Task failed";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kDataCorruption:
      return "Data corruption";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message();
  return out;
}

}  // namespace matryoshka
