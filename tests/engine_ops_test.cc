// Correctness tests for the flat dataflow engine's operators. Bags are
// unordered, so results are compared as sorted vectors / multisets.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "engine/bag.h"
#include "engine/join.h"
#include "engine/ops.h"
#include "engine/shuffle.h"

namespace matryoshka::engine {
namespace {

ClusterConfig TestConfig() {
  ClusterConfig cfg;
  cfg.num_machines = 4;
  cfg.cores_per_machine = 4;
  cfg.default_parallelism = 8;
  return cfg;
}

template <typename T>
std::vector<T> Sorted(std::vector<T> v) {
  std::sort(v.begin(), v.end());
  return v;
}

std::vector<int64_t> Iota(int64_t n) {
  std::vector<int64_t> v(static_cast<std::size_t>(n));
  for (int64_t i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = i;
  return v;
}

class EngineOpsTest : public ::testing::Test {
 protected:
  EngineOpsTest() : cluster_(TestConfig()) {}
  Cluster cluster_;
};

TEST_F(EngineOpsTest, ParallelizeRoundTrips) {
  auto bag = Parallelize(&cluster_, Iota(100), 7);
  EXPECT_EQ(bag.num_partitions(), 7);
  EXPECT_EQ(bag.Size(), 100);
  EXPECT_EQ(Sorted(bag.ToVector()), Iota(100));
}

TEST_F(EngineOpsTest, ParallelizeDefaultParallelism) {
  auto bag = Parallelize(&cluster_, Iota(100));
  EXPECT_EQ(bag.num_partitions(), 8);
}

TEST_F(EngineOpsTest, ParallelizeEmptyInput) {
  auto bag = Parallelize(&cluster_, std::vector<int64_t>{}, 4);
  EXPECT_EQ(bag.Size(), 0);
  EXPECT_EQ(bag.num_partitions(), 4);
}

TEST_F(EngineOpsTest, MapTransformsEveryElement) {
  auto bag = Parallelize(&cluster_, Iota(50), 5);
  auto doubled = Map(bag, [](int64_t x) { return 2 * x; });
  auto v = Sorted(doubled.ToVector());
  ASSERT_EQ(v.size(), 50u);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(v[i], 2 * static_cast<int64_t>(i));
  }
}

TEST_F(EngineOpsTest, MapChangesElementType) {
  auto bag = Parallelize(&cluster_, Iota(10), 3);
  auto strs = Map(bag, [](int64_t x) { return std::to_string(x); });
  EXPECT_EQ(strs.Size(), 10);
}

TEST_F(EngineOpsTest, FilterKeepsMatching) {
  auto bag = Parallelize(&cluster_, Iota(100), 5);
  auto evens = Filter(bag, [](int64_t x) { return x % 2 == 0; });
  auto v = Sorted(evens.ToVector());
  ASSERT_EQ(v.size(), 50u);
  for (int64_t x : v) EXPECT_EQ(x % 2, 0);
}

TEST_F(EngineOpsTest, FlatMapExpands) {
  auto bag = Parallelize(&cluster_, Iota(10), 2);
  auto out = FlatMap(bag, [](int64_t x) {
    return std::vector<int64_t>{x, x + 100};
  });
  EXPECT_EQ(out.Size(), 20);
  auto v = Sorted(out.ToVector());
  EXPECT_EQ(v.front(), 0);
  EXPECT_EQ(v.back(), 109);
}

TEST_F(EngineOpsTest, FlatMapCanDropElements) {
  auto bag = Parallelize(&cluster_, Iota(10), 2);
  auto out = FlatMap(bag, [](int64_t x) {
    return x % 2 == 0 ? std::vector<int64_t>{x} : std::vector<int64_t>{};
  });
  EXPECT_EQ(out.Size(), 5);
}

TEST_F(EngineOpsTest, MapPartitionsSeesWholePartitions) {
  auto bag = Parallelize(&cluster_, Iota(20), 4);
  auto sums = MapPartitions(bag, [](const std::vector<int64_t>& part) {
    int64_t s = 0;
    for (int64_t x : part) s += x;
    return std::vector<int64_t>{s};
  });
  EXPECT_EQ(sums.Size(), 4);
  int64_t total = 0;
  for (int64_t s : sums.ToVector()) total += s;
  EXPECT_EQ(total, 190);
}

TEST_F(EngineOpsTest, UnionConcatenates) {
  auto a = Parallelize(&cluster_, Iota(5), 2);
  auto b = Parallelize(&cluster_, Iota(5), 3);
  auto u = Union(a, b);
  EXPECT_EQ(u.Size(), 10);
  EXPECT_EQ(u.num_partitions(), 5);
}

TEST_F(EngineOpsTest, ZipWithUniqueIdAssignsDistinctIds) {
  auto bag = Parallelize(&cluster_, Iota(100), 7);
  auto zipped = ZipWithUniqueId(bag);
  auto v = zipped.ToVector();
  std::vector<uint64_t> ids;
  ids.reserve(v.size());
  for (const auto& [id, x] : v) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
}

TEST_F(EngineOpsTest, KeysValuesMapValues) {
  std::vector<std::pair<int64_t, int64_t>> data{{1, 10}, {2, 20}, {3, 30}};
  auto bag = Parallelize(&cluster_, data, 2);
  EXPECT_EQ(Sorted(Keys(bag).ToVector()), (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(Sorted(Values(bag).ToVector()),
            (std::vector<int64_t>{10, 20, 30}));
  auto mv = MapValues(bag, [](int64_t v) { return v + 1; });
  auto v = Sorted(mv.ToVector());
  EXPECT_EQ(v[0], (std::pair<int64_t, int64_t>{1, 11}));
}

TEST_F(EngineOpsTest, CountAction) {
  auto bag = Parallelize(&cluster_, Iota(42), 4);
  EXPECT_EQ(Count(bag), 42);
  EXPECT_EQ(cluster_.metrics().jobs, 1);
}

TEST_F(EngineOpsTest, NotEmptyAction) {
  auto bag = Parallelize(&cluster_, Iota(1), 4);
  EXPECT_TRUE(NotEmpty(bag));
  auto empty = Filter(bag, [](int64_t) { return false; });
  EXPECT_FALSE(NotEmpty(empty));
}

TEST_F(EngineOpsTest, ReduceAction) {
  auto bag = Parallelize(&cluster_, Iota(10), 3);
  auto sum = Reduce(bag, [](int64_t a, int64_t b) { return a + b; });
  ASSERT_TRUE(sum.has_value());
  EXPECT_EQ(*sum, 45);
}

TEST_F(EngineOpsTest, ReduceEmptyIsNullopt) {
  auto bag = Parallelize(&cluster_, std::vector<int64_t>{}, 3);
  EXPECT_FALSE(Reduce(bag, [](int64_t a, int64_t b) { return a + b; })
                   .has_value());
}

TEST_F(EngineOpsTest, CollectReturnsAll) {
  auto bag = Parallelize(&cluster_, Iota(25), 4);
  EXPECT_EQ(Sorted(Collect(bag)), Iota(25));
}

TEST_F(EngineOpsTest, RepartitionPreservesElements) {
  auto bag = Parallelize(&cluster_, Iota(100), 3);
  auto rep = Repartition(bag, 16);
  EXPECT_EQ(rep.num_partitions(), 16);
  EXPECT_EQ(Sorted(rep.ToVector()), Iota(100));
}

TEST_F(EngineOpsTest, PartitionByKeyColocatesKeys) {
  std::vector<std::pair<int64_t, int64_t>> data;
  for (int64_t i = 0; i < 100; ++i) data.emplace_back(i % 10, i);
  auto bag = Parallelize(&cluster_, data, 5);
  auto parted = PartitionByKey(bag, 4);
  // Each key must appear in exactly one partition.
  for (int64_t key = 0; key < 10; ++key) {
    int parts_with_key = 0;
    for (const auto& part : parted.partitions()) {
      bool has = false;
      for (const auto& [k, v] : part) has |= (k == key);
      parts_with_key += has ? 1 : 0;
    }
    EXPECT_EQ(parts_with_key, 1) << "key " << key;
  }
}

TEST_F(EngineOpsTest, ReduceByKeySums) {
  std::vector<std::pair<int64_t, int64_t>> data;
  for (int64_t i = 0; i < 100; ++i) data.emplace_back(i % 4, 1);
  auto bag = Parallelize(&cluster_, data, 6);
  auto counts =
      ReduceByKey(bag, [](int64_t a, int64_t b) { return a + b; }, 8);
  auto v = Sorted(counts.ToVector());
  ASSERT_EQ(v.size(), 4u);
  for (const auto& [k, c] : v) EXPECT_EQ(c, 25);
}

TEST_F(EngineOpsTest, ReduceByKeySingletonKeys) {
  std::vector<std::pair<int64_t, int64_t>> data{{7, 70}};
  auto bag = Parallelize(&cluster_, data, 3);
  auto out = ReduceByKey(bag, [](int64_t a, int64_t b) { return a + b; });
  auto v = out.ToVector();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].first, 7);
  EXPECT_EQ(v[0].second, 70);
}

TEST_F(EngineOpsTest, GroupByKeyCollectsGroups) {
  std::vector<std::pair<int64_t, int64_t>> data;
  for (int64_t i = 0; i < 30; ++i) data.emplace_back(i % 3, i);
  auto bag = Parallelize(&cluster_, data, 5);
  auto groups = GroupByKey(bag, 4);
  auto v = groups.ToVector();
  ASSERT_EQ(v.size(), 3u);
  for (auto& [k, vs] : v) {
    EXPECT_EQ(vs.size(), 10u);
    for (int64_t x : vs) EXPECT_EQ(x % 3, k);
  }
}

TEST_F(EngineOpsTest, DistinctRemovesDuplicates) {
  std::vector<int64_t> data;
  for (int64_t i = 0; i < 100; ++i) data.push_back(i % 10);
  auto bag = Parallelize(&cluster_, data, 6);
  auto d = Distinct(bag, 4);
  EXPECT_EQ(Sorted(d.ToVector()), Iota(10));
}

TEST_F(EngineOpsTest, DistinctOnPairs) {
  std::vector<std::pair<int64_t, int64_t>> data{{1, 2}, {1, 2}, {2, 1}};
  auto bag = Parallelize(&cluster_, data, 2);
  EXPECT_EQ(Distinct(bag).Size(), 2);
}

TEST_F(EngineOpsTest, RepartitionJoinMatchesKeys) {
  std::vector<std::pair<int64_t, int64_t>> left{{1, 10}, {2, 20}, {3, 30}};
  std::vector<std::pair<int64_t, std::string>> right{{2, "b"}, {3, "c"},
                                                     {4, "d"}};
  auto l = Parallelize(&cluster_, left, 2);
  auto r = Parallelize(&cluster_, right, 3);
  auto joined = RepartitionJoin(l, r, 4);
  auto v = joined.ToVector();
  ASSERT_EQ(v.size(), 2u);
  std::sort(v.begin(), v.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  EXPECT_EQ(v[0].first, 2);
  EXPECT_EQ(v[0].second.first, 20);
  EXPECT_EQ(v[0].second.second, "b");
  EXPECT_EQ(v[1].first, 3);
}

TEST_F(EngineOpsTest, RepartitionJoinDuplicateKeysCrossProduct) {
  std::vector<std::pair<int64_t, int64_t>> left{{1, 10}, {1, 11}};
  std::vector<std::pair<int64_t, int64_t>> right{{1, 100}, {1, 101}};
  auto l = Parallelize(&cluster_, left, 2);
  auto r = Parallelize(&cluster_, right, 2);
  EXPECT_EQ(RepartitionJoin(l, r).Size(), 4);
}

TEST_F(EngineOpsTest, BroadcastJoinMatchesRepartitionJoin) {
  std::vector<std::pair<int64_t, int64_t>> left, right;
  for (int64_t i = 0; i < 50; ++i) left.emplace_back(i % 10, i);
  for (int64_t i = 0; i < 10; ++i) right.emplace_back(i, 1000 + i);
  auto l = Parallelize(&cluster_, left, 4);
  auto r = Parallelize(&cluster_, right, 2);
  auto bj = Sorted(BroadcastJoin(l, r).ToVector());
  auto rj = Sorted(RepartitionJoin(l, r, 8).ToVector());
  EXPECT_EQ(bj, rj);
}

TEST_F(EngineOpsTest, LeftOuterJoinKeepsUnmatchedLeft) {
  std::vector<std::pair<int64_t, int64_t>> left{{1, 10}, {2, 20}};
  std::vector<std::pair<int64_t, int64_t>> right{{1, 100}};
  auto l = Parallelize(&cluster_, left, 2);
  auto r = Parallelize(&cluster_, right, 2);
  auto joined = LeftOuterJoin(l, r, 4);
  auto v = joined.ToVector();
  ASSERT_EQ(v.size(), 2u);
  std::sort(v.begin(), v.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  EXPECT_TRUE(v[0].second.second.has_value());
  EXPECT_EQ(*v[0].second.second, 100);
  EXPECT_FALSE(v[1].second.second.has_value());
}

TEST_F(EngineOpsTest, CoGroupGathersBothSides) {
  std::vector<std::pair<int64_t, int64_t>> left{{1, 10}, {1, 11}, {2, 20}};
  std::vector<std::pair<int64_t, int64_t>> right{{1, 100}, {3, 300}};
  auto l = Parallelize(&cluster_, left, 2);
  auto r = Parallelize(&cluster_, right, 2);
  auto cg = CoGroup(l, r, 4);
  auto v = cg.ToVector();
  ASSERT_EQ(v.size(), 3u);
  std::sort(v.begin(), v.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  EXPECT_EQ(v[0].second.first.size(), 2u);
  EXPECT_EQ(v[0].second.second.size(), 1u);
  EXPECT_EQ(v[1].second.first.size(), 1u);
  EXPECT_EQ(v[1].second.second.size(), 0u);
  EXPECT_EQ(v[2].second.first.size(), 0u);
  EXPECT_EQ(v[2].second.second.size(), 1u);
}

TEST_F(EngineOpsTest, CartesianProducesAllPairs) {
  auto a = Parallelize(&cluster_, Iota(4), 2);
  auto b = Parallelize(&cluster_, Iota(3), 2);
  auto prod = Cartesian(a, b);
  EXPECT_EQ(prod.Size(), 12);
}

TEST_F(EngineOpsTest, FailedClusterShortCircuits) {
  auto bag = Parallelize(&cluster_, Iota(10), 2);
  cluster_.Fail(Status::OutOfMemory("injected"));
  auto mapped = Map(bag, [](int64_t x) { return x; });
  EXPECT_EQ(mapped.Size(), 0);
  EXPECT_EQ(Count(mapped), 0);
  EXPECT_TRUE(cluster_.status().IsOutOfMemory());
  EXPECT_EQ(cluster_.status().message(), "injected");  // first error sticks
}

TEST_F(EngineOpsTest, ParallelExecutionMatchesSequential) {
  ClusterConfig cfg = TestConfig();
  cfg.execute_parallel = true;
  Cluster par(cfg);
  std::vector<std::pair<int64_t, int64_t>> data;
  for (int64_t i = 0; i < 1000; ++i) data.emplace_back(i % 17, i);
  auto seq_bag = Parallelize(&cluster_, data, 13);
  auto par_bag = Parallelize(&par, data, 13);
  auto f = [](int64_t a, int64_t b) { return a + b; };
  EXPECT_EQ(Sorted(ReduceByKey(seq_bag, f, 7).ToVector()),
            Sorted(ReduceByKey(par_bag, f, 7).ToVector()));
}

}  // namespace
}  // namespace matryoshka::engine
