#include "engine/external/spill_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cassert>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace matryoshka::engine::external {

namespace {

std::atomic<int64_t> g_live_spill_files{0};

std::string TempDir() {
  const char* env = std::getenv("TMPDIR");
  return (env != nullptr && env[0] != '\0') ? env : "/tmp";
}

}  // namespace

SpillFile::SpillFile() {
  std::string tmpl = TempDir() + "/matryoshka-spill-XXXXXX";
  // mkstemp wants a mutable buffer; std::string data() is contiguous and
  // NUL-terminated in C++17.
  fd_ = mkstemp(tmpl.data());
  MATRYOSHKA_CHECK(fd_ >= 0)
      << "cannot create spill file in " << TempDir() << ": "
      << std::strerror(errno);
  // Unlink before the first write: the blocks live only as long as the
  // descriptor, so no failure path can leak a file (see header contract).
  MATRYOSHKA_CHECK(::unlink(tmpl.c_str()) == 0)
      << "cannot unlink spill file " << tmpl << ": " << std::strerror(errno);
  g_live_spill_files.fetch_add(1, std::memory_order_relaxed);
}

SpillFile::~SpillFile() {
  if (fd_ >= 0) {
    ::close(fd_);
    g_live_spill_files.fetch_sub(1, std::memory_order_relaxed);
  }
}

SpillFile::SpillFile(SpillFile&& other) noexcept
    : fd_(other.fd_), write_offset_(other.write_offset_) {
  other.fd_ = -1;
  other.write_offset_ = 0;
}

uint64_t SpillFile::Append(const std::string& data) {
  MATRYOSHKA_DCHECK(fd_ >= 0);
  const uint64_t at = write_offset_;
  const char* p = data.data();
  std::size_t left = data.size();
  uint64_t off = at;
  while (left > 0) {
    const ssize_t n = ::pwrite(fd_, p, left, static_cast<off_t>(off));
    MATRYOSHKA_CHECK(n > 0) << "spill write failed: " << std::strerror(errno);
    p += n;
    off += static_cast<uint64_t>(n);
    left -= static_cast<std::size_t>(n);
  }
  write_offset_ = at + data.size();
  return at;
}

void SpillFile::ReadAt(uint64_t offset, std::size_t size,
                       std::string* out) const {
  MATRYOSHKA_DCHECK(fd_ >= 0);
  out->resize(size);
  char* p = out->empty() ? nullptr : &(*out)[0];
  std::size_t left = size;
  uint64_t off = offset;
  while (left > 0) {
    const ssize_t n = ::pread(fd_, p, left, static_cast<off_t>(off));
    MATRYOSHKA_CHECK(n > 0) << "spill read failed (offset " << off
                            << "): " << (n == 0 ? "EOF" : std::strerror(errno));
    p += n;
    off += static_cast<uint64_t>(n);
    left -= static_cast<std::size_t>(n);
  }
}

int64_t SpillFile::LiveCount() {
  return g_live_spill_files.load(std::memory_order_relaxed);
}

}  // namespace matryoshka::engine::external
