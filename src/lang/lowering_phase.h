#ifndef MATRYOSHKA_LANG_LOWERING_PHASE_H_
#define MATRYOSHKA_LANG_LOWERING_PHASE_H_

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/optimizer.h"
#include "engine/bag.h"
#include "lang/expr.h"
#include "lang/value.h"

namespace matryoshka::lang {

/// THE LOWERING PHASE (Sec. 4.1.2, performed at runtime): executes the
/// explicitly nested-parallel program produced by the parsing phase,
/// resolving every nesting primitive (groupByKeyIntoNestedBag,
/// mapWithLiftedUDF, lifted*, binaryScalarOp) to concrete flat operations
/// of the dataflow engine. Physical choices — broadcast vs. repartition tag
/// joins, partition counts — are made here, where intermediate
/// cardinalities are known (Sec. 8), via core::Optimizer.
///
/// This is the "SparkTranslator" box of the paper's Fig. 2, targeting the
/// in-repo engine.
class LoweringPhase {
 public:
  explicit LoweringPhase(engine::Cluster* cluster,
                         core::OptimizerOptions options = {});

  /// Binds a named source to an input bag. Bag elements are lang::Values
  /// (tuples for keyed data).
  void BindSource(const std::string& name, engine::Bag<Value> bag);

  /// Executes a parsing-phase output program and collects its result:
  ///  - a flat bag          -> its elements,
  ///  - a lifted scalar/bag from a mapWithLiftedUDF over a nested bag
  ///                        -> (group key, value) 2-tuples,
  ///  - a lifted scalar/bag over a lifted flat bag -> its values,
  ///  - a driver scalar     -> a single element.
  /// Surface-language bag ops that the parsing phase should have rewritten
  /// (a map-with-bag-ops, a groupByKey) fail with InvalidArgument: the
  /// lowering phase only understands the explicit plan.
  Result<std::vector<Value>> Execute(const Program& program);

 private:
  engine::Cluster* cluster_;
  core::OptimizerOptions options_;
  std::unordered_map<std::string, engine::Bag<Value>> sources_;
};

}  // namespace matryoshka::lang

#endif  // MATRYOSHKA_LANG_LOWERING_PHASE_H_
