#ifndef MATRYOSHKA_LANG_EXPR_H_
#define MATRYOSHKA_LANG_EXPR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "lang/value.h"

namespace matryoshka::lang {

/// Node kinds of the embedded query language IR ("Emma" stand-in).
///
/// The first block is the *surface* language the user writes (Listing 1 of
/// the paper): nested bags and nested parallel operations, expressed
/// directly. The second block is what only the PARSING PHASE may introduce
/// (Listing 2): the explicit nesting primitives that the lowering phase
/// resolves to flat engine operations at runtime.
enum class ExprKind {
  // --- surface language ---
  kSource,       // named input bag, bound at execution time
  kVar,          // reference to a let-bound name (or lambda parameter)
  kConst,        // literal Value
  kTupleMake,    // (e0, e1, ...)
  kTupleField,   // e._i
  kBinOp,        // scalar arithmetic / comparison / logic
  kMap,          // bag.map(lambda)
  kFilter,       // bag.filter(lambda)
  kFlatMap,      // bag.flatMap(lambda) — lambda yields a tuple of outputs
  kReduceByKey,  // bag of 2-tuples; lambda2 merges values per key
  kGroupByKey,   // Bag[(k,v)] -> Bag[(k, Bag[v])]: the nesting source
  kDistinct,
  kCount,        // bag -> scalar
  kUnion,
  kWhile,        // iterate a loop state; body yields (next state, continue?)
  kIf,           // per-group branch: then/else lambdas over a state
  // --- introduced by the parsing phase (Sec. 4) ---
  kGroupByKeyIntoNestedBag,  // Listing 2 line 3
  kMapWithLiftedUdf,         // Listing 2 line 4 (UDF runs exactly once)
  kLiftedMap,
  kLiftedFilter,
  kLiftedFlatMap,
  kLiftedReduceByKey,
  kLiftedDistinct,
  kLiftedCount,
  kBinaryScalarOp,        // scalar op over InnerScalars (tag join, Sec. 4.3)
  kLiftedMapWithClosure,  // element lambda capturing an InnerScalar (Sec. 5.1)
  kLiftedWhile,           // lifted loop (Sec. 6.2, Listing 4)
  kLiftedIf,              // lifted branch (Sec. 6.2: both branches run)
};

enum class BinOpKind {
  kAdd,
  kSub,
  kMul,
  kDiv,  // numeric division; yields double
  kEq,
  kNe,
  kLt,
  kLe,
  kAnd,
  kOr,
};

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

struct Stmt;

/// A function literal. Element-level lambdas (map/filter UDFs over single
/// elements) have scalar-only bodies; the lambda of a lifted map holds the
/// whole inner program (whose statements the parsing phase rewrites to
/// lifted operations). `captures` lists the free variables the parsing
/// phase made explicit (closure conversion, Sec. 5).
struct Lambda {
  std::vector<std::string> params;
  std::vector<Stmt> body;  // let-bindings; may be empty for pure lambdas
  ExprPtr result;
  std::vector<std::string> captures;
};
using LambdaPtr = std::shared_ptr<const Lambda>;

struct Expr {
  ExprKind kind;
  std::string name;        // kSource / kVar; kLiftedMapWithClosure: closure var
  Value literal;           // kConst
  BinOpKind op = BinOpKind::kAdd;
  std::size_t index = 0;   // kTupleField
  std::vector<ExprPtr> inputs;
  LambdaPtr lambda;   // unary UDF
  LambdaPtr lambda2;  // binary merge function (reduceByKey)
};

struct Stmt {
  std::string name;
  ExprPtr expr;
};

/// A straight-line nested-parallel program: let-bindings plus the name of
/// the binding whose value is the program's result.
struct Program {
  std::vector<Stmt> stmts;
  std::string result;
};

// --- builder helpers (the "syntax" of the embedded language) ---

ExprPtr Source(std::string name);
ExprPtr Var(std::string name);
ExprPtr Lit(Value v);
ExprPtr MakeTuple(std::vector<ExprPtr> parts);
ExprPtr Field(ExprPtr e, std::size_t i);
ExprPtr BinOp(BinOpKind op, ExprPtr a, ExprPtr b);
ExprPtr Map(ExprPtr bag, LambdaPtr f);
ExprPtr Filter(ExprPtr bag, LambdaPtr f);
ExprPtr FlatMap(ExprPtr bag, LambdaPtr f);
ExprPtr ReduceByKey(ExprPtr bag, LambdaPtr f2);
ExprPtr GroupByKey(ExprPtr bag);
ExprPtr Distinct(ExprPtr bag);
ExprPtr Count(ExprPtr bag);
ExprPtr UnionOf(ExprPtr a, ExprPtr b);
/// Control flow as a higher-order function (Sec. 6.1): iterates from
/// `init`; `body` takes the current loop state and returns the 2-tuple
/// (next state, continue-as-boolean). Usable inside the UDF of a nested
/// map, where the parsing phase lifts it (different groups exit at
/// different iterations).
ExprPtr While(ExprPtr init, LambdaPtr body);
/// Per-group conditional (Sec. 6.1): routes `state` into `then_branch` or
/// `else_branch` depending on the (per-group) boolean `cond`. Inside a
/// lifted UDF this becomes a lifted if: BOTH branches execute, each over
/// only the groups whose condition routes there.
ExprPtr If(ExprPtr cond, ExprPtr state, LambdaPtr then_branch,
           LambdaPtr else_branch);

/// Pure unary lambda: param -> result expression.
LambdaPtr Lam(std::string param, ExprPtr result);
/// Pure binary lambda (reduce functions).
LambdaPtr Lam2(std::string a, std::string b, ExprPtr result);
/// Multi-statement lambda (the UDF of a nested map).
LambdaPtr LamProgram(std::vector<std::string> params, std::vector<Stmt> body,
                     ExprPtr result);

/// Structural pretty-printer; the parsing-phase tests compare rewritten
/// plans against the paper's Listing 2 shape through this.
std::string ToString(const Expr& e);
std::string ToString(const Program& p);

}  // namespace matryoshka::lang

#endif  // MATRYOSHKA_LANG_EXPR_H_
