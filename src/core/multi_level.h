#ifndef MATRYOSHKA_CORE_MULTI_LEVEL_H_
#define MATRYOSHKA_CORE_MULTI_LEVEL_H_

#include <cstdint>
#include <utility>

#include "core/inner_bag.h"
#include "core/inner_scalar.h"
#include "core/lifting_context.h"
#include "core/nested_bag.h"
#include "core/tag.h"
#include "engine/join.h"
#include "engine/ops.h"

/// Helpers for programs with three or more levels of parallelism (Sec. 7):
/// descending one nesting level (a lifted map over the *elements* of inner
/// bags), joining data across adjacent levels via composite parent tags, and
/// ascending results back to the enclosing level.
namespace matryoshka::core {

/// Lifts every element of every inner bag into its own (child-tagged) UDF
/// invocation — the multi-level analogue of LiftFlatBag. Used when a lifted
/// UDF maps over an inner bag with *another* lifted UDF, e.g. launching one
/// BFS per vertex of every graph component (Sec. 2.2 / Average Distances).
/// Tags of the result are children of the input's tags; the result is an
/// InnerScalar (exactly one element per new tag).
template <typename T>
InnerScalar<T> LiftElements(const InnerBag<T>& bag) {
  auto zipped = engine::ZipWithUniqueId(bag.repr());
  auto repr = engine::Map(
      zipped, [](const std::pair<uint64_t, std::pair<Tag, T>>& p) {
        return std::pair<Tag, T>(p.second.first.Child(p.first),
                                 p.second.second);
      });
  auto tags = engine::Keys(repr);
  const int64_t n = repr.Size();
  LiftingContext ctx(bag.ctx().cluster(), std::move(tags), n,
                     bag.ctx().options());
  return InnerScalar<T>(ctx, std::move(repr));
}

/// Equi-join between a deep (child-level) InnerBag and a shallow
/// (parent-level) InnerBag: a deep element with tag t matches shallow
/// elements with tag t.Parent() and the same key K. This is how per-instance
/// state (e.g. a BFS frontier, depth d) meets per-group data shared by all
/// instances of the group (e.g. the component's edges, depth d-1) without
/// replicating the group data per instance eagerly.
template <typename K, typename V, typename W>
InnerBag<std::pair<K, std::pair<V, W>>> LiftedJoinWithParent(
    const InnerBag<std::pair<K, V>>& deep,
    const InnerBag<std::pair<K, W>>& shallow, int64_t num_partitions = -1) {
  using PK = std::pair<Tag, K>;  // (parent tag, key)
  auto deep_rekeyed = engine::Map(
      deep.repr(), [](const std::pair<Tag, std::pair<K, V>>& p) {
        return std::pair<PK, std::pair<Tag, V>>(
            PK(p.first.Parent(), p.second.first),
            std::pair<Tag, V>(p.first, p.second.second));
      });
  auto shallow_rekeyed = engine::Map(
      shallow.repr(), [](const std::pair<Tag, std::pair<K, W>>& p) {
        return std::pair<PK, W>(PK(p.first, p.second.first), p.second.second);
      });
  auto joined =
      engine::RepartitionJoin(deep_rekeyed, shallow_rekeyed, num_partitions);
  auto out = engine::Map(
      joined,
      [](const std::pair<PK, std::pair<std::pair<Tag, V>, W>>& p) {
        return std::pair<Tag, std::pair<K, std::pair<V, W>>>(
            p.second.first.first,
            std::pair<K, std::pair<V, W>>(
                p.first.second,
                std::pair<V, W>(p.second.first.second, p.second.second)));
      });
  return InnerBag<std::pair<K, std::pair<V, W>>>(deep.ctx(), std::move(out));
}

/// Pre-rekeyed (parent-tag, key) static side for repeated cross-level
/// joins (e.g. the component's edges probed by every BFS frontier
/// expansion): built once, partitioned once.
template <typename K, typename W>
StaticJoinSide<K, W> MakeParentStaticJoinSide(
    const InnerBag<std::pair<K, W>>& shallow, int64_t num_partitions = -1) {
  return MakeStaticJoinSide(shallow, num_partitions);
}

/// LiftedJoinWithParent against a static shallow side: only the deep
/// (dynamic) side is rekeyed and shuffled per call.
template <typename K, typename V, typename W>
InnerBag<std::pair<K, std::pair<V, W>>> LiftedJoinWithParentStatic(
    const InnerBag<std::pair<K, V>>& deep,
    const StaticJoinSide<K, W>& shallow) {
  using PK = std::pair<Tag, K>;
  auto deep_rekeyed = engine::Map(
      deep.repr(), [](const std::pair<Tag, std::pair<K, V>>& p) {
        return std::pair<PK, std::pair<Tag, V>>(
            PK(p.first.Parent(), p.second.first),
            std::pair<Tag, V>(p.first, p.second.second));
      });
  auto joined = engine::RepartitionJoin(shallow.repr(), deep_rekeyed,
                                        shallow.repr().key_partitions());
  auto out = engine::Map(
      joined,
      [](const std::pair<PK, std::pair<W, std::pair<Tag, V>>>& p) {
        return std::pair<Tag, std::pair<K, std::pair<V, W>>>(
            p.second.second.first,
            std::pair<K, std::pair<V, W>>(
                p.first.second,
                std::pair<V, W>(p.second.second.second, p.second.first)));
      });
  return InnerBag<std::pair<K, std::pair<V, W>>>(deep.ctx(), std::move(out));
}

/// Ascends one nesting level: the per-child-tag scalars of a deep
/// InnerScalar become, per parent tag, an InnerBag of values at the
/// enclosing level (one element per child invocation) — the return path of
/// a nested lifted map.
template <typename T>
InnerBag<T> LowerToParent(const InnerScalar<T>& deep,
                          const LiftingContext& parent_ctx) {
  auto repr = engine::Map(deep.repr(), [](const std::pair<Tag, T>& p) {
    return std::pair<Tag, T>(p.first.Parent(), p.second);
  });
  return InnerBag<T>(parent_ctx, std::move(repr));
}

/// Builds an InnerBag in an existing NestedBag's tag space from a flat
/// keyed bag sharing the same grouping keys (tags are the deterministic
/// per-key tags GroupByKeyIntoNestedBag assigns). Lets several collections
/// grouped by the same key share one lifted UDF, e.g. a component's vertex
/// list alongside its edge list.
template <typename K, typename V>
InnerBag<V> TagByKey(const engine::Bag<std::pair<K, V>>& bag,
                     const LiftingContext& ctx) {
  auto repr = engine::Map(bag, [](const std::pair<K, V>& p) {
    return std::pair<Tag, V>(internal::TagOfKey(p.first), p.second);
  });
  return InnerBag<V>(ctx, std::move(repr));
}

}  // namespace matryoshka::core

#endif  // MATRYOSHKA_CORE_MULTI_LEVEL_H_
