#ifndef MATRYOSHKA_ENGINE_RECOVERY_H_
#define MATRYOSHKA_ENGINE_RECOVERY_H_

#include <functional>
#include <utility>

#include "engine/bag.h"
#include "engine/cluster.h"

/// Driver-side recovery for the simulated cluster (the policy layer over
/// PR 1's fault *injection*):
///
///  - Checkpoint(): writes a bag to the simulated replicated store and
///    truncates its lineage to depth 1, so machine-loss recompute re-reads
///    the checkpoint instead of re-running the narrow chain.
///  - An auto-checkpoint policy (RecoveryPolicy::auto_checkpoint) that the
///    narrow operators consult on their outputs, bounding lineage depth by
///    the checkpoint interval whenever the expected loss recompute exceeds
///    the checkpoint write cost.
///  - RunWithRecovery(): a driver-level retry loop that re-runs a program
///    after retryable failures (task-retry exhaustion, blown deadlines)
///    with escalating backoff, instead of letting the sticky status poison
///    the whole program.
///
/// Everything is deterministic on the simulated clock, and a default
/// RecoveryPolicy leaves the engine byte-identical to one without this
/// header (locked down by engine_recovery_test).
namespace matryoshka::engine {

/// True when the driver may re-run a failed program: transient task-retry
/// exhaustion, blown deadlines, and real IO faults (EIO through the retry
/// budget, spill-run corruption — the disk may behave on a re-run, and
/// under an injected storm the retry bumps the fault epoch) are retryable;
/// the deterministic memory model's OOM and programming errors are not
/// (re-running reproduces them).
inline bool RetryableForDriver(const Status& status) {
  return status.IsTaskFailed() || status.IsDeadlineExceeded() ||
         status.IsIOError() || status.IsDataCorruption();
}

/// Writes `bag` to the simulated replicated store and returns the same data
/// with its lineage truncated to depth 1. Charges the replicated write
/// (RecoveryPolicy::checkpoint_replicas copies at checkpoint_bytes_per_s per
/// live machine) to the clock and tallies checkpoints_written /
/// checkpoint_bytes; the trace records a kCheckpoint driver span. The data
/// itself is untouched — a Bag is already materialized in this engine, the
/// checkpoint buys the *lineage truncation* under the fault model.
template <typename T>
Bag<T> Checkpoint(const Bag<T>& bag, const char* label = "checkpoint") {
  Cluster* c = bag.cluster();
  if (!c->ok()) return Bag<T>(c);
  // Checkpointing writes real data: a pending fused chain is a forcing
  // point here (charge-free — composition already paid the scan stages).
  bag.Force();
  c->AccrueCheckpoint(RealBagBytes(bag), label);
  if (!c->ok()) return Bag<T>(c);
  return bag.WithLineageDepth(1);
}

namespace internal {

/// Cost-based auto-checkpoint hook: narrow operators pass their output
/// through this. With auto_checkpoint off (the default) the bag flows
/// through untouched at zero cost; with it on, a bag whose lineage has
/// reached min_checkpoint_lineage is checkpointed when the expected
/// machine-loss recompute of its chain (depth x the lost machine's share of
/// the bag's compute, spread over the surviving slots) exceeds the
/// checkpoint write cost — so loss recompute is bounded by the interval.
///
/// Pending fused bags flow through without materializing until the probe
/// actually needs data: the policy/lineage early-outs and the RealSize of a
/// size-preserving chain answer from metadata, while the byte estimate (and
/// a triggered Checkpoint) force the chain — producing exactly the values
/// the eager engine computes on its materialized output, so the decision
/// and every charge are bit-identical with fusion on or off.
template <typename T>
Bag<T> MaybeAutoCheckpoint(Bag<T> bag) {
  Cluster* c = bag.cluster();
  const RecoveryPolicy& policy = c->config().recovery;
  if (!policy.auto_checkpoint || !c->ok()) return bag;
  if (bag.lineage_depth() < policy.min_checkpoint_lineage) return bag;
  const double lost_share = 1.0 / static_cast<double>(c->available_machines());
  const double chain_recompute =
      static_cast<double>(bag.lineage_depth()) * lost_share *
      c->ComputeCost(bag.RealSize(), 1.0) /
      static_cast<double>(c->available_cores());
  if (chain_recompute < c->CheckpointWriteSeconds(RealBagBytes(bag))) {
    return bag;
  }
  return Checkpoint(bag, "auto-checkpoint");
}

Status RunWithRecoveryImpl(Cluster* cluster,
                           const std::function<void(int)>& body,
                           const char* label);

}  // namespace internal

/// Driver-level retry loop: runs `body(attempt)` and, when the cluster ends
/// in a driver-retryable failure (RetryableForDriver), clears the sticky
/// status, charges an escalating backoff (driver_backoff_s * 2^attempt), and
/// re-runs the body — up to RecoveryPolicy::max_driver_retries times. The
/// body should restart from its last checkpoint (re-building inputs is
/// correct too, just slower). Arms the per-attempt deadline window on entry.
///
/// Deterministic: the fault draws of a re-run differ from the failed
/// attempt's because stage indices keep advancing, exactly as a re-submitted
/// job on a real cluster sees fresh scheduling randomness — but the whole
/// retried execution is still a pure function of (program, config, seed).
///
/// Returns the final status: OK as soon as an attempt completes, otherwise
/// the last failure (also left sticky on the cluster).
template <typename Body>
Status RunWithRecovery(Cluster* cluster, Body&& body,
                       const char* label = "program") {
  return internal::RunWithRecoveryImpl(
      cluster, std::function<void(int)>(std::forward<Body>(body)), label);
}

}  // namespace matryoshka::engine

#endif  // MATRYOSHKA_ENGINE_RECOVERY_H_
