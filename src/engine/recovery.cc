#include "engine/recovery.h"

#include <cmath>
#include <string>

#include "common/logging.h"

namespace matryoshka::engine::internal {

Status RunWithRecoveryImpl(Cluster* cluster,
                           const std::function<void(int)>& body,
                           const char* label) {
  const RecoveryPolicy& policy = cluster->config().recovery;
  cluster->ArmRunDeadline();
  for (int attempt = 0;; ++attempt) {
    body(attempt);
    if (cluster->ok()) return Status::OK();
    Status failure = cluster->status();
    if (!RetryableForDriver(failure) || attempt >= policy.max_driver_retries) {
      return failure;
    }
    const double backoff = policy.driver_backoff_s * std::ldexp(1.0, attempt);
    MATRYOSHKA_LOG(kInfo) << "driver retry " << (attempt + 1) << "/"
                          << policy.max_driver_retries << " of " << label
                          << " after: " << failure.ToString();
    cluster->BeginDriverRetry(backoff, failure.ToString());
  }
}

}  // namespace matryoshka::engine::internal
