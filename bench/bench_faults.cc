// Fault-tolerance A/B: the Fig. 1 K-means setup run with and without the
// StandardFaultPlan, for the inner-parallel workaround (many jobs of tiny
// tasks) and Matryoshka (few jobs of chunky tasks). The new quantitative
// claim in the paper's spirit: retry backoff and straggler tails are paid
// once per stage, and inner-parallel runs ~20x more stages, so under the
// same fault regime its simulated time degrades by an order of magnitude
// more seconds -- and its fault penalty grows linearly with the number of
// inner computations, while Matryoshka's stays flat (its stage count is
// independent of the group count).
//
// x-axis: args are (configurations, faults_on). Compare the faults_on=1 row
// against the faults_on=0 row of the same variant; the degradation is their
// difference. Sweep the configurations axis to see inner-parallel's penalty
// scale while Matryoshka's does not. Pass --faults=<prob> to override the
// injected task failure probability of the fault-on arms (default 0.01).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "datagen/datagen.h"
#include "engine/bag.h"
#include "workloads/kmeans.h"

namespace matryoshka::bench {
namespace {

using workloads::KMeansParams;
using workloads::Variant;

constexpr int64_t kTotalPoints = 1 << 18;
constexpr double kTargetGb = 8.0;
constexpr uint64_t kSeed = 2021;

double g_fault_prob = 0.01;  // set from --faults in main()

KMeansParams Params() {
  KMeansParams p;
  p.k = 4;
  p.max_iterations = 10;
  p.epsilon = 0.0;  // fixed work per run, like Fig. 1
  return p;
}

engine::ClusterConfig Config(bool faults_on) {
  engine::ClusterConfig cfg = PaperCluster();
  ScaleToTarget(&cfg, kTargetGb, kTotalPoints,
                sizeof(std::pair<int64_t, datagen::Point>));
  if (faults_on) {
    cfg.faults = StandardFaultPlan(kSeed);
    cfg.faults.task_failure_prob = g_fault_prob;
  }
  return cfg;
}

void RunVariant(benchmark::State& state, Variant variant) {
  const int64_t configs = state.range(0);
  const bool faults_on = state.range(1) != 0;
  auto data = datagen::GenerateGroupedPoints(kTotalPoints, configs, 3, kSeed);
  engine::Cluster cluster(Config(faults_on));
  ObsAttach(&cluster,
            variant == Variant::kInnerParallel ? "faults/inner-parallel"
                                               : "faults/matryoshka",
            {configs, faults_on ? 1 : 0});
  for (auto _ : state) {
    cluster.Reset();
    auto bag = engine::Parallelize(&cluster, data);
    auto result = workloads::RunKMeans(&cluster, bag, Params(), variant);
    Report(state, result);
  }
  state.counters["faults"] = faults_on ? 1 : 0;
}

void BM_Faults_InnerParallel(benchmark::State& state) {
  RunVariant(state, Variant::kInnerParallel);
}
void BM_Faults_Matryoshka(benchmark::State& state) {
  RunVariant(state, Variant::kMatryoshka);
}

#define FAULTS_ARGS                                                     \
  ArgsProduct({{64, 256}, {0, 1}})                                      \
      ->UseManualTime()->Unit(benchmark::kSecond)->Iterations(1)

BENCHMARK(BM_Faults_InnerParallel)->FAULTS_ARGS;
BENCHMARK(BM_Faults_Matryoshka)->FAULTS_ARGS;

}  // namespace
}  // namespace matryoshka::bench

int main(int argc, char** argv) {
  matryoshka::bench::g_fault_prob =
      matryoshka::bench::ParseFaultsFlag(&argc, argv);
  matryoshka::bench::ObsSession::Get().ParseFlags(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  matryoshka::bench::ObsSession::Get().Finalize();
  return 0;
}
