#ifndef MATRYOSHKA_ENGINE_EXTERNAL_MEMORY_BUDGET_H_
#define MATRYOSHKA_ENGINE_EXTERNAL_MEMORY_BUDGET_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

/// The bounded-memory execution subsystem: wide operators overflow their
/// scratch (scatter buffers, aggregation builds) to temp-file runs instead
/// of growing without bound. See DESIGN.md, "The external execution
/// determinism contract": for ANY budget and ANY pool size the output data,
/// partition order, and all simulated Metrics are bit-identical to the
/// unbounded in-memory run.
namespace matryoshka::engine::external {

/// The real (process-RAM) memory accountant wide operators charge their
/// scratch against. Two distinct roles, deliberately separated:
///
///  * Spill DECISIONS use static quotas (`ShareFor`): the budget divided
///    evenly over the workers of a phase (producers of a scatter, reduce
///    partitions of an aggregation). A quota depends only on the worker's
///    own input stream, never on what other threads have charged, so the
///    decision — and therefore the spill counters and the data path taken —
///    is identical for any pool size. A shared racing accountant could not
///    give that guarantee.
///
///  * Observational ACCOUNTING (`Charge`/`Release`/`peak`) tracks what the
///    bounded structures actually held, for diagnostics and tests. It never
///    feeds back into behavior.
///
/// `total == 0` means unbounded: every wide operator takes today's purely
/// in-memory path, byte-identically to an engine without this subsystem.
class MemoryBudget {
 public:
  explicit MemoryBudget(std::size_t total_bytes = 0) : total_(total_bytes) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  bool unbounded() const { return total_ == 0; }
  std::size_t total() const { return total_; }

  /// The static per-worker share of the budget when `workers` cooperate in
  /// one parallel phase. Deterministic: a pure function of (total, workers).
  /// Unbounded budgets have no meaningful share; callers must check
  /// unbounded() first (returns SIZE_MAX as a safety net).
  std::size_t ShareFor(std::size_t workers) const {
    if (unbounded()) return static_cast<std::size_t>(-1);
    return total_ / (workers > 0 ? workers : 1);
  }

  /// Observational accounting of live scratch bytes (thread-safe; const
  /// because it never changes behavior, only the diagnostics below).
  void Charge(std::size_t bytes) const {
    const std::size_t now = in_use_.fetch_add(bytes) + bytes;
    std::size_t prev = peak_.load(std::memory_order_relaxed);
    while (prev < now &&
           !peak_.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
    }
  }
  void Release(std::size_t bytes) const { in_use_.fetch_sub(bytes); }

  std::size_t in_use() const { return in_use_.load(); }
  std::size_t peak() const { return peak_.load(); }

 private:
  const std::size_t total_;
  mutable std::atomic<std::size_t> in_use_{0};
  mutable std::atomic<std::size_t> peak_{0};
};

/// Real-spill counters of one bounded phase. Each worker fills its own
/// instance; the driver reduces them in worker-index order (see
/// ReduceInOrder), so the totals reported into Metrics are deterministic for
/// a fixed budget regardless of pool size or thread timing.
struct SpillStats {
  int64_t spill_events = 0;  ///< scratch flushes that went to disk
  double spilled_bytes = 0;  ///< serialized bytes written
  int64_t spill_runs = 0;    ///< run segments written (merge fan-in)
  /// --- Real-fault hardening (all zero with the failpoint registry
  /// disarmed and healthy hardware; see common/failpoints.h) ---
  int64_t io_faults_injected = 0;  ///< failpoint firings at IO sites
  int64_t io_retries = 0;          ///< bounded-retry attempts after EIO
  int64_t checksum_failures = 0;   ///< runs that failed verify on read
  int64_t inmemory_fallbacks = 0;  ///< ops re-run in memory (disk unusable)

  void Add(const SpillStats& o) {
    spill_events += o.spill_events;
    spilled_bytes += o.spilled_bytes;
    spill_runs += o.spill_runs;
    io_faults_injected += o.io_faults_injected;
    io_retries += o.io_retries;
    checksum_failures += o.checksum_failures;
    inmemory_fallbacks += o.inmemory_fallbacks;
  }
};

}  // namespace matryoshka::engine::external

#endif  // MATRYOSHKA_ENGINE_EXTERNAL_MEMORY_BUDGET_H_
