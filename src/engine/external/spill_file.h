#ifndef MATRYOSHKA_ENGINE_EXTERNAL_SPILL_FILE_H_
#define MATRYOSHKA_ENGINE_EXTERNAL_SPILL_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace matryoshka::engine::external {

/// One anonymous temp file holding the spilled runs of one worker (one
/// scatter producer or one aggregation partition).
///
/// Lifecycle / cleanup contract: the file is created with mkstemp under
/// $TMPDIR (default /tmp) and unlinked IMMEDIATELY, before any data is
/// written — the kernel reclaims the blocks when the last descriptor
/// closes. Cleanup is therefore structural, not a code path: a sticky
/// cost-model failure, a driver retry, an exception, even a crashed process
/// leaves nothing behind in the filesystem. Tests verify this two ways:
/// LiveCount() must return to zero after every op (RAII), and no
/// "matryoshka-spill-*" entries may remain in the temp dir even mid-run
/// (unlink-before-write).
///
/// Thread safety: one worker appends to its own SpillFile (no sharing
/// during the write phase); the read phase uses positional pread on the
/// shared descriptor, which is safe from any number of concurrent readers.
class SpillFile {
 public:
  /// Opens (and immediately unlinks) a fresh temp file. Aborts if the temp
  /// dir is not writable — an environment error, not a data error.
  SpillFile();
  ~SpillFile();

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;
  SpillFile(SpillFile&& other) noexcept;
  SpillFile& operator=(SpillFile&&) = delete;

  /// Appends `data` at the end of the file; returns the byte offset the
  /// block starts at. Caller-serialized (one writer per file by design).
  uint64_t Append(const std::string& data);

  /// Reads exactly `size` bytes starting at `offset` into `*out` (resized).
  /// Safe to call concurrently from any thread (positional pread).
  void ReadAt(uint64_t offset, std::size_t size, std::string* out) const;

  /// Bytes written so far.
  uint64_t size() const { return write_offset_; }

  /// Number of SpillFile objects currently alive in the process, for the
  /// temp-file cleanup tests.
  static int64_t LiveCount();

 private:
  int fd_ = -1;
  uint64_t write_offset_ = 0;
};

}  // namespace matryoshka::engine::external

#endif  // MATRYOSHKA_ENGINE_EXTERNAL_SPILL_FILE_H_
